#include <gtest/gtest.h>

#include <memory>

#include "cloud/cloud_store.h"
#include "wal/reader.h"
#include "wal/record.h"
#include "wal/writer.h"

namespace bg3::wal {
namespace {

WalRecord Mutation(bwtree::Lsn lsn, const std::string& key,
                   const std::string& value) {
  WalRecord r;
  r.type = WalRecord::Type::kMutation;
  r.tree_id = 1;
  r.page_id = 7;
  r.lsn = lsn;
  r.entry = {bwtree::DeltaOp::kUpsert, key, value};
  return r;
}

// --- record codec --------------------------------------------------------------

TEST(WalRecordTest, MutationRoundTrip) {
  WalRecord r = Mutation(42, "key", "value");
  r.sim_publish_latency_us = 1234;
  std::string buf;
  r.EncodeTo(&buf);
  Slice in(buf);
  WalRecord out;
  ASSERT_TRUE(WalRecord::DecodeFrom(&in, &out).ok());
  EXPECT_EQ(out.type, WalRecord::Type::kMutation);
  EXPECT_EQ(out.tree_id, 1u);
  EXPECT_EQ(out.page_id, 7u);
  EXPECT_EQ(out.lsn, 42u);
  EXPECT_EQ(out.entry.key, "key");
  EXPECT_EQ(out.entry.value, "value");
  EXPECT_EQ(out.sim_publish_latency_us, 1234u);
}

TEST(WalRecordTest, SplitRoundTrip) {
  WalRecord r;
  r.type = WalRecord::Type::kSplit;
  r.tree_id = 2;
  r.page_id = 10;
  r.aux_page_id = 11;
  r.lsn = 99;
  r.separator = "mid-key";
  std::string buf;
  r.EncodeTo(&buf);
  Slice in(buf);
  WalRecord out;
  ASSERT_TRUE(WalRecord::DecodeFrom(&in, &out).ok());
  EXPECT_EQ(out.type, WalRecord::Type::kSplit);
  EXPECT_EQ(out.aux_page_id, 11u);
  EXPECT_EQ(out.separator, "mid-key");
}

TEST(WalRecordTest, CheckpointRoundTrip) {
  WalRecord r;
  r.type = WalRecord::Type::kCheckpoint;
  r.lsn = 1000;
  std::string buf;
  r.EncodeTo(&buf);
  Slice in(buf);
  WalRecord out;
  ASSERT_TRUE(WalRecord::DecodeFrom(&in, &out).ok());
  EXPECT_EQ(out.type, WalRecord::Type::kCheckpoint);
  EXPECT_EQ(out.lsn, 1000u);
}

TEST(WalRecordTest, RejectsGarbage) {
  WalRecord out;
  Slice empty("");
  EXPECT_TRUE(WalRecord::DecodeFrom(&empty, &out).IsCorruption());
  std::string bad = "\x09junkjunk";
  Slice in(bad);
  EXPECT_TRUE(WalRecord::DecodeFrom(&in, &out).IsCorruption());
}

TEST(WalBatchTest, RoundTripMultipleRecords) {
  std::vector<WalRecord> records = {Mutation(1, "a", "1"), Mutation(2, "b", "2"),
                                    Mutation(3, "c", "3")};
  const std::string batch = EncodeBatch(records);
  std::vector<WalRecord> out;
  ASSERT_TRUE(DecodeBatch(Slice(batch), &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].entry.key, "c");
}

TEST(WalBatchTest, EmptyBatch) {
  const std::string batch = EncodeBatch({});
  std::vector<WalRecord> out;
  ASSERT_TRUE(DecodeBatch(Slice(batch), &out).ok());
  EXPECT_TRUE(out.empty());
}

// --- writer / reader --------------------------------------------------------------

struct WalFixture {
  explicit WalFixture(size_t group_size = 1) {
    store = std::make_unique<cloud::CloudStore>();
    WalWriterOptions wopts;
    wopts.stream = store->CreateStream("wal");
    wopts.group_size = group_size;
    writer = std::make_unique<WalWriter>(store.get(), wopts);
    reader = std::make_unique<WalReader>(store.get(), wopts.stream);
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<WalWriter> writer;
  std::unique_ptr<WalReader> reader;
};

TEST(WalWriterTest, WriteThroughVisibleImmediately) {
  WalFixture f(/*group_size=*/1);
  ASSERT_TRUE(f.writer->Append(Mutation(1, "k", "v")).ok());
  auto records = f.reader->Poll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].entry.key, "k");
}

TEST(WalWriterTest, GroupedRecordsVisibleAfterFlush) {
  WalFixture f(/*group_size=*/8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.writer->Append(Mutation(i, "k" + std::to_string(i), "v")).ok());
  }
  EXPECT_TRUE(f.reader->Poll().value().empty());  // still buffered
  ASSERT_TRUE(f.writer->Flush().ok());
  EXPECT_EQ(f.reader->Poll().value().size(), 5u);
}

TEST(WalWriterTest, GroupSizeTriggersAutoFlush) {
  WalFixture f(/*group_size=*/3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(f.writer->Append(Mutation(i, "k", "v")).ok());
  }
  EXPECT_EQ(f.reader->Poll().value().size(), 3u);
  EXPECT_EQ(f.writer->batches_appended(), 1u);
}

TEST(WalWriterTest, PublishLatencyStamped) {
  WalFixture f(/*group_size=*/1);
  ASSERT_TRUE(f.writer->Append(Mutation(1, "k", "v")).ok());
  auto records = f.reader->Poll();
  ASSERT_EQ(records.value().size(), 1u);
  // Write-through records still pay the append latency of the store.
  EXPECT_GT(records.value()[0].sim_publish_latency_us, 0u);
}

TEST(WalReaderTest, PollReturnsOnlyNewRecords) {
  WalFixture f;
  ASSERT_TRUE(f.writer->Append(Mutation(1, "a", "1")).ok());
  EXPECT_EQ(f.reader->Poll().value().size(), 1u);
  EXPECT_TRUE(f.reader->Poll().value().empty());
  ASSERT_TRUE(f.writer->Append(Mutation(2, "b", "2")).ok());
  auto next = f.reader->Poll();
  ASSERT_EQ(next.value().size(), 1u);
  EXPECT_EQ(next.value()[0].entry.key, "b");
}

TEST(WalReaderTest, TwoIndependentReaders) {
  WalFixture f;
  WalReader second(f.store.get(), 0);
  ASSERT_TRUE(f.writer->Append(Mutation(1, "a", "1")).ok());
  EXPECT_EQ(f.reader->Poll().value().size(), 1u);
  EXPECT_EQ(second.Poll().value().size(), 1u);  // own cursor
}

TEST(WalReaderTest, OrderPreservedAcrossManyBatches) {
  WalFixture f(/*group_size=*/4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.writer->Append(Mutation(i, "k" + std::to_string(i), "v")).ok());
  }
  ASSERT_TRUE(f.writer->Flush().ok());
  auto records = f.reader->Poll();
  ASSERT_EQ(records.value().size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(records.value()[i].lsn, static_cast<bwtree::Lsn>(i));
  }
}

}  // namespace
}  // namespace bg3::wal

namespace bg3::wal {
namespace {

TEST(WalWriterTest, LastAppendPtrAdvances) {
  WalFixture f(/*group_size=*/1);
  EXPECT_TRUE(f.writer->last_append_ptr().IsNull());
  ASSERT_TRUE(f.writer->Append(Mutation(1, "a", "1")).ok());
  const cloud::PagePointer p1 = f.writer->last_append_ptr();
  EXPECT_FALSE(p1.IsNull());
  ASSERT_TRUE(f.writer->Append(Mutation(2, "b", "2")).ok());
  const cloud::PagePointer p2 = f.writer->last_append_ptr();
  EXPECT_FALSE(p1 == p2);
}

TEST(WalReaderTest, CursorTracksConsumption) {
  WalFixture f;
  EXPECT_TRUE(f.reader->cursor().IsNull());
  ASSERT_TRUE(f.writer->Append(Mutation(1, "a", "1")).ok());
  BG3_IGNORE_STATUS(f.reader->Poll());
  EXPECT_FALSE(f.reader->cursor().IsNull());
  EXPECT_TRUE(f.reader->cursor() == f.writer->last_append_ptr());
}

// --- SeekTo: suffix-bounded recovery entry point ------------------------------

TEST(WalReaderTest, SeekToReturnsOnlySuffixBatches) {
  WalFixture f(/*group_size=*/1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(f.writer->Append(Mutation(i, "k" + std::to_string(i), "v")).ok());
  }
  const cloud::PagePointer cursor = f.writer->last_append_ptr();
  for (int i = 10; i < 15; ++i) {
    ASSERT_TRUE(f.writer->Append(Mutation(i, "k" + std::to_string(i), "v")).ok());
  }
  WalReader seeked(f.store.get(), 0);
  seeked.SeekTo(cursor);
  auto records = seeked.Poll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 5u);
  EXPECT_EQ(records.value()[0].lsn, 10u);
  EXPECT_EQ(records.value()[4].lsn, 14u);
}

TEST(WalReaderTest, SeekToConsumesOnlySuffixBytes) {
  WalFixture f(/*group_size=*/1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.writer->Append(Mutation(i, "key", "payload-payload")).ok());
  }
  const cloud::PagePointer cursor = f.writer->last_append_ptr();
  for (int i = 100; i < 110; ++i) {
    ASSERT_TRUE(f.writer->Append(Mutation(i, "key", "payload-payload")).ok());
  }
  const uint64_t total = f.store->TotalBytes(0);

  // A full-replay reader pays the whole stream; a seeked reader pays only
  // the suffix — the bounded-restart property bench_restart measures.
  BG3_IGNORE_STATUS(f.reader->Poll());
  EXPECT_GE(f.reader->bytes_consumed(), total / 2);

  WalReader seeked(f.store.get(), 0);
  seeked.SeekTo(cursor);
  BG3_IGNORE_STATUS(seeked.Poll());
  EXPECT_GT(seeked.bytes_consumed(), 0u);
  EXPECT_LT(seeked.bytes_consumed(), total / 4);
  EXPECT_LT(seeked.bytes_consumed(), f.reader->bytes_consumed());
}

TEST(WalReaderTest, SeekToLsnFloorFiltersCoveredMutations) {
  // Batches carry several records; seeking to a mid-batch cursor means the
  // suffix's first batch can straddle the floor. Covered mutations must be
  // dropped at decode time, structural records always pass.
  WalFixture f(/*group_size=*/4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(f.writer->Append(Mutation(i, "pre" + std::to_string(i), "v")).ok());
  }
  const cloud::PagePointer cursor = f.writer->last_append_ptr();
  WalRecord split;
  split.type = WalRecord::Type::kSplit;
  split.tree_id = 1;
  split.page_id = 7;
  split.aux_page_id = 8;
  split.lsn = 2;  // at or below the floor — structural, must pass anyway
  split.separator = "m";
  ASSERT_TRUE(f.writer->Append(split).ok());
  for (int i = 4; i < 7; ++i) {
    ASSERT_TRUE(f.writer->Append(Mutation(i, "post" + std::to_string(i), "v")).ok());
  }
  ASSERT_TRUE(f.writer->Flush().ok());

  WalReader seeked(f.store.get(), 0);
  seeked.SeekTo(cursor, /*lsn_floor=*/4);
  auto records = seeked.Poll();
  ASSERT_TRUE(records.ok());
  // Mutation lsn=4 is at the floor (covered); 5 and 6 replay; the split
  // passes despite its low LSN.
  ASSERT_EQ(records.value().size(), 3u);
  EXPECT_EQ(records.value()[0].type, WalRecord::Type::kSplit);
  EXPECT_EQ(records.value()[1].lsn, 5u);
  EXPECT_EQ(records.value()[2].lsn, 6u);
  EXPECT_EQ(seeked.records_filtered(), 1u);
}

TEST(WalReaderTest, SeekToNullCursorIsFullReplay) {
  WalFixture f;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.writer->Append(Mutation(i, "k", "v")).ok());
  }
  WalReader seeked(f.store.get(), 0);
  seeked.SeekTo(cloud::PagePointer{});  // no checkpoint: replay everything
  EXPECT_EQ(seeked.Poll().value().size(), 5u);
}

TEST(WalReaderTest, SeekToThenPollTracksCursorForTruncation) {
  WalFixture f(/*group_size=*/1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(f.writer->Append(Mutation(i, "k", "v")).ok());
  }
  const cloud::PagePointer cursor = f.writer->last_append_ptr();
  ASSERT_TRUE(f.writer->Append(Mutation(8, "tail", "v")).ok());
  WalReader seeked(f.store.get(), 0);
  seeked.SeekTo(cursor);
  BG3_IGNORE_STATUS(seeked.Poll());
  EXPECT_TRUE(seeked.cursor() == f.writer->last_append_ptr());
  // Further appends flow normally after the seek-primed first poll.
  ASSERT_TRUE(f.writer->Append(Mutation(9, "more", "v")).ok());
  EXPECT_EQ(seeked.Poll().value().size(), 1u);
}

TEST(WalReaderTest, SurvivesTruncationOfConsumedPrefix) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 64;
  cloud::CloudStore store(copts);
  WalWriterOptions wopts;
  wopts.stream = store.CreateStream("wal");
  WalWriter writer(&store, wopts);
  WalReader reader(&store, wopts.stream);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(writer.Append(Mutation(i, "key-" + std::to_string(i), "v")).ok());
  }
  BG3_IGNORE_STATUS(reader.Poll());  // consume everything
  // Truncate the consumed prefix; new appends still flow to this reader.
  (void)store.TruncateStreamBefore(wopts.stream,
                                   reader.cursor().extent_id);
  ASSERT_TRUE(writer.Append(Mutation(99, "fresh", "v")).ok());
  auto records = reader.Poll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].entry.key, "fresh");
}

}  // namespace
}  // namespace bg3::wal
