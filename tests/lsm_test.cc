#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "cloud/cloud_store.h"
#include "common/random.h"
#include "lsm/lsm_db.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"

namespace bg3::lsm {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

// --- memtable ------------------------------------------------------------------

TEST(MemTableTest, PutGetDelete) {
  MemTable m;
  m.Put("a", "1");
  std::string v;
  bool tomb = false;
  ASSERT_TRUE(m.Get("a", &v, &tomb));
  EXPECT_FALSE(tomb);
  EXPECT_EQ(v, "1");
  m.Delete("a");
  ASSERT_TRUE(m.Get("a", &v, &tomb));
  EXPECT_TRUE(tomb);
  EXPECT_FALSE(m.Get("b", &v, &tomb));
}

TEST(MemTableTest, DumpIsSorted) {
  MemTable m;
  m.Put("c", "3");
  m.Put("a", "1");
  m.Put("b", "2");
  auto records = m.Dump();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[2].key, "c");
}

TEST(MemTableTest, ApproxBytesGrows) {
  MemTable m;
  const size_t before = m.ApproxBytes();
  m.Put("key", std::string(1000, 'v'));
  EXPECT_GE(m.ApproxBytes(), before + 1000);
}

// --- bloom filter ------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(Key(i));
  BloomFilter bloom(keys, 10);
  for (const auto& k : keys) EXPECT_TRUE(bloom.MayContain(k));
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(Key(i));
  BloomFilter bloom(keys, 10);
  int fp = 0;
  for (int i = 10000; i < 20000; ++i) {
    if (bloom.MayContain(Key(i))) ++fp;
  }
  EXPECT_LT(fp, 300);  // ~1-3% expected at 10 bits/key
}

// --- sstable ------------------------------------------------------------------------

struct SstFixture {
  SstFixture() {
    store = std::make_unique<cloud::CloudStore>();
    opts.stream = store->CreateStream("sst");
    opts.block_bytes = 256;
  }
  std::unique_ptr<cloud::CloudStore> store;
  SsTable::Options opts;
};

TEST(SsTableTest, BuildAndPointGet) {
  SstFixture f;
  std::vector<KvRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back({Key(i), "v" + std::to_string(i), false});
  }
  auto table = SsTable::Build(f.store.get(), f.opts, records);
  ASSERT_TRUE(table.ok());
  std::string value;
  bool tomb;
  auto found = table.value()->Get(Key(42), &value, &tomb);
  ASSERT_TRUE(found.ok());
  ASSERT_TRUE(found.value());
  EXPECT_EQ(value, "v42");
  EXPECT_FALSE(table.value()->Get(Key(5000), &value, &tomb).value());
}

TEST(SsTableTest, PointGetCostsAtMostOneBlockRead) {
  SstFixture f;
  std::vector<KvRecord> records;
  for (int i = 0; i < 500; ++i) records.push_back({Key(i), "value", false});
  auto table = SsTable::Build(f.store.get(), f.opts, records).take();
  const uint64_t reads_before = f.store->stats().read_ops.Get();
  std::string value;
  bool tomb;
  ASSERT_TRUE(table->Get(Key(321), &value, &tomb).value());
  EXPECT_EQ(f.store->stats().read_ops.Get() - reads_before, 1u);
}

TEST(SsTableTest, TombstonesDecideKeys) {
  SstFixture f;
  std::vector<KvRecord> records = {{Key(1), "", true}, {Key(2), "v", false}};
  auto table = SsTable::Build(f.store.get(), f.opts, records).take();
  std::string value;
  bool tomb = false;
  ASSERT_TRUE(table->Get(Key(1), &value, &tomb).value());
  EXPECT_TRUE(tomb);
}

TEST(SsTableTest, ReadAllRoundTrips) {
  SstFixture f;
  std::vector<KvRecord> records;
  for (int i = 0; i < 300; ++i) records.push_back({Key(i), Key(i), false});
  auto table = SsTable::Build(f.store.get(), f.opts, records).take();
  auto all = table->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 300u);
  EXPECT_EQ(all.value()[150].key, Key(150));
}

TEST(SsTableTest, CollectRange) {
  SstFixture f;
  std::vector<KvRecord> records;
  for (int i = 0; i < 100; ++i) records.push_back({Key(i), "v", false});
  auto table = SsTable::Build(f.store.get(), f.opts, records).take();
  std::vector<KvRecord> out;
  ASSERT_TRUE(table->CollectRange(Key(20), Key(30), &out).ok());
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.front().key, Key(20));
}

TEST(SsTableTest, OverlapChecks) {
  SstFixture f;
  std::vector<KvRecord> records = {{Key(10), "v", false}, {Key(20), "v", false}};
  auto table = SsTable::Build(f.store.get(), f.opts, records).take();
  EXPECT_TRUE(table->Overlaps(Key(15), Key(25)));
  EXPECT_TRUE(table->Overlaps(Key(0), ""));
  EXPECT_FALSE(table->Overlaps(Key(21), Key(30)));
  EXPECT_FALSE(table->Overlaps(Key(0), Key(10)));  // end exclusive
}

// --- full db --------------------------------------------------------------------------

struct DbFixture {
  explicit DbFixture(size_t memtable_bytes = 2048) {
    store = std::make_unique<cloud::CloudStore>();
    LsmOptions opts;
    opts.stream = store->CreateStream("lsm");
    opts.memtable_bytes = memtable_bytes;
    opts.compaction.l0_compaction_trigger = 2;
    opts.compaction.level_base_bytes = 8192;
    opts.compaction.sstable_target_bytes = 4096;
    opts.compaction.block_bytes = 512;
    db = std::make_unique<LsmDb>(store.get(), opts);
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<LsmDb> db;
};

TEST(LsmDbTest, PutGetAcrossFlushes) {
  DbFixture f;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.db->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  EXPECT_GT(f.db->stats().memtable_flushes.Get(), 0u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(f.db->Get(Key(i)).value(), "v" + std::to_string(i)) << i;
  }
}

TEST(LsmDbTest, OverwritesNewestWins) {
  DbFixture f;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(f.db->Put(Key(i), "r" + std::to_string(round)).ok());
    }
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f.db->Get(Key(i)).value(), "r4");
}

TEST(LsmDbTest, DeletesSurviveCompaction) {
  DbFixture f;
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(f.db->Put(Key(i), "v").ok());
  for (int i = 0; i < 200; i += 2) ASSERT_TRUE(f.db->Delete(Key(i)).ok());
  ASSERT_TRUE(f.db->Flush().ok());
  for (int i = 0; i < 200; ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(f.db->Get(Key(i)).status().IsNotFound()) << i;
    } else {
      EXPECT_TRUE(f.db->Get(Key(i)).ok()) << i;
    }
  }
}

TEST(LsmDbTest, GetMissingKeyNotFound) {
  DbFixture f;
  ASSERT_TRUE(f.db->Put("exists", "v").ok());
  EXPECT_TRUE(f.db->Get("missing").status().IsNotFound());
}

TEST(LsmDbTest, ScanMergesLevelsAndMemtable) {
  DbFixture f;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.db->Put(Key(i), std::to_string(i)).ok());
  }
  std::vector<KvRecord> out;
  ASSERT_TRUE(f.db->Scan(Key(50), Key(60), 1000, &out).ok());
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.front().key, Key(50));
  EXPECT_EQ(out.front().value, "50");
}

TEST(LsmDbTest, ScanSkipsTombstones) {
  DbFixture f;
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(f.db->Put(Key(i), "v").ok());
  ASSERT_TRUE(f.db->Delete(Key(5)).ok());
  std::vector<KvRecord> out;
  ASSERT_TRUE(f.db->Scan("", "", 1000, &out).ok());
  EXPECT_EQ(out.size(), 19u);
}

TEST(LsmDbTest, CompactionReducesTableCountAndDropsGarbage) {
  DbFixture f;
  // Heavy overwrite churn produces compactions.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(f.db->Put(Key(i), std::string(40, 'a' + round % 26)).ok());
    }
  }
  EXPECT_GT(f.db->compaction_stats().compactions.Get(), 0u);
  EXPECT_GT(f.db->compaction_stats().bytes_written.Get(), 0u);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(f.db->Get(Key(i)).ok());
}

TEST(LsmDbTest, ReadAmplificationVisibleViaTableProbes) {
  DbFixture f;
  for (int i = 0; i < 400; ++i) ASSERT_TRUE(f.db->Put(Key(i), "v").ok());
  const uint64_t probes_before = f.db->stats().tables_probed.Get();
  const uint64_t gets_before = f.db->stats().gets.Get();
  for (int i = 0; i < 400; i += 7) (void)f.db->Get(Key(i));
  const uint64_t probes = f.db->stats().tables_probed.Get() - probes_before;
  const uint64_t gets = f.db->stats().gets.Get() - gets_before;
  // The multi-level design probes at least one table per get on average.
  EXPECT_GE(probes, gets);
}

// --- sharded front end ------------------------------------------------------------------

TEST(ShardedLsmTest, RoutesConsistently) {
  cloud::CloudStore store;
  LsmOptions opts;
  opts.memtable_bytes = 4096;
  ShardedLsm db(&store, opts, 4);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db.Put(Key(i), std::to_string(i)).ok());
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(db.Get(Key(i)).value(), std::to_string(i));
  }
  ASSERT_TRUE(db.Delete(Key(7)).ok());
  EXPECT_TRUE(db.Get(Key(7)).status().IsNotFound());
}

TEST(ShardedLsmTest, ConcurrentWritersAcrossShards) {
  cloud::CloudStore store;
  LsmOptions opts;
  opts.memtable_bytes = 4096;
  ShardedLsm db(&store, opts, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(db.Put(Key(t * 1000 + i), "v").ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_TRUE(db.Get(Key(t * 1000 + i)).ok());
    }
  }
}

}  // namespace
}  // namespace bg3::lsm

namespace bg3::lsm {
namespace {

TEST(LsmDbTest, PartialCompactionDoesNotRewriteDisjointData) {
  // Leveled partial compaction: churn confined to one key range must not
  // rewrite tables holding disjoint ranges over and over.
  DbFixture f(/*memtable_bytes=*/2048);
  // Disjoint cold range.
  for (int i = 10'000; i < 10'300; ++i) {
    ASSERT_TRUE(f.db->Put(Key(i), std::string(40, 'c')).ok());
  }
  ASSERT_TRUE(f.db->Flush().ok());
  const uint64_t written_after_cold =
      f.db->compaction_stats().bytes_written.Get();
  // Hot churn in a different range.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(f.db->Put(Key(i), std::string(40, 'h')).ok());
    }
  }
  ASSERT_TRUE(f.db->Flush().ok());
  const uint64_t churn_written =
      f.db->compaction_stats().bytes_written.Get() - written_after_cold;
  // Cold range data is ~13KB; full-level merges would rewrite it on every
  // compaction (dozens of times). Partial compaction leaves it mostly
  // untouched, so total compaction output stays well under that regime.
  EXPECT_LT(churn_written, 40u * 13'000u);
  // And everything still reads correctly.
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(f.db->Get(Key(i)).ok());
  for (int i = 10'000; i < 10'300; ++i) EXPECT_TRUE(f.db->Get(Key(i)).ok());
}

TEST(LsmDbTest, LevelsStayNonOverlappingAfterPartialCompactions) {
  DbFixture f(/*memtable_bytes=*/1024);
  Random rng(3);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        f.db->Put(Key(rng.Uniform(800)), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(f.db->Flush().ok());
  // Correctness probe across the whole key space (overlap bugs surface as
  // stale values winning the merge order).
  std::vector<KvRecord> out;
  ASSERT_TRUE(f.db->Scan("", "", 1u << 20, &out).ok());
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].key, out[i].key);  // strictly sorted, no duplicates
  }
}

}  // namespace
}  // namespace bg3::lsm
