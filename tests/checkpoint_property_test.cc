// Property test for continuous fuzzy checkpointing (DESIGN.md §5.7):
// random interleavings of writes, bounded checkpoint steps, group flushes
// and crash/recover must always recover to the in-memory model, and once a
// checkpoint manifest is durable, recovery replays strictly less WAL than
// the stream holds (the bounded-restart property).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "cloud/cloud_store.h"
#include "common/random.h"
#include "replication/checkpoint.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"
#include "test_seed.h"

namespace bg3::replication {
namespace {

std::string Key(uint64_t i) {
  char buf[24];
  snprintf(buf, sizeof(buf), "k%08llu", static_cast<unsigned long long>(i));
  return buf;
}

struct Harness {
  Harness() {
    store = std::make_unique<cloud::CloudStore>();
    opts.tree.tree_id = 1;
    opts.tree.max_leaf_entries = 16;
    opts.tree.base_stream = store->CreateStream("base");
    opts.tree.delta_stream = store->CreateStream("delta");
    opts.wal.stream = store->CreateStream("wal");
    opts.flush_group_pages = 1'000'000;  // explicit flushes only
    opts.flush_group_mutations = 1'000'000'000;
    rw = std::make_unique<RwNode>(store.get(), opts);
    NewCheckpointer();
  }

  void NewCheckpointer() {
    CheckpointerOptions copts;
    copts.max_pages_per_round = 3;  // small rounds → cuts straddle crashes
    ckpt = std::make_unique<Checkpointer>(store.get(), rw.get(), copts);
  }

  Status CrashAndRecover() {
    ckpt.reset();  // dies with the node it observes
    rw.reset();
    auto recovered = RwNode::Recover(store.get(), opts);
    BG3_RETURN_IF_ERROR(recovered.status());
    rw = recovered.take();
    NewCheckpointer();
    return Status::OK();
  }

  std::unique_ptr<cloud::CloudStore> store;
  RwNodeOptions opts;
  std::unique_ptr<RwNode> rw;
  std::unique_ptr<Checkpointer> ckpt;
};

void VerifyModel(Harness& h, const std::map<std::string, std::string>& model,
                 uint64_t seed, int step) {
  for (const auto& [k, v] : model) {
    auto got = h.rw->Get(k);
    ASSERT_TRUE(got.ok()) << "seed=" << seed << " step=" << step << " key=" << k
                          << " " << got.status().ToString();
    ASSERT_EQ(got.value(), v) << "seed=" << seed << " step=" << step;
  }
  // Spot-check absence: keys adjacent to the model's range must miss.
  ASSERT_TRUE(h.rw->Get("zzz-not-a-key").status().IsNotFound())
      << "seed=" << seed << " step=" << step;
}

TEST(CheckpointPropertyTest, RandomSchedulesRecoverToModel) {
  const uint64_t seed = test::AnnouncedSeed(
      "CheckpointPropertyTest.RandomSchedulesRecoverToModel", 0xC4EC4);
  for (int round = 0; round < 4; ++round) {
    Random rng(seed + round * 0x9E3779B97F4A7C15ull);
    Harness h;
    std::map<std::string, std::string> model;
    bool checkpointed = false;
    const int kSteps = 400;
    for (int step = 0; step < kSteps; ++step) {
      const uint32_t dice = rng.Next() % 100;
      if (dice < 55) {  // Put
        const std::string k = Key(rng.Next() % 200);
        const std::string v = "v" + std::to_string(rng.Next() % 1000);
        ASSERT_TRUE(h.rw->Put(k, v).ok());
        model[k] = v;
      } else if (dice < 70) {  // Delete (possibly absent — both must agree)
        const std::string k = Key(rng.Next() % 200);
        Status s = h.rw->Delete(k);
        ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
        model.erase(k);
      } else if (dice < 85) {  // one bounded checkpoint increment
        ASSERT_TRUE(h.ckpt->Step().ok());
        checkpointed |= h.ckpt->epoch() > 0;
      } else if (dice < 92) {  // group flush (the RW node's own checkpoint)
        ASSERT_TRUE(h.rw->FlushGroup().ok());
      } else {  // crash at an arbitrary point — possibly mid-cut
        ASSERT_NO_FATAL_FAILURE({
          Status s = h.CrashAndRecover();
          ASSERT_TRUE(s.ok()) << "seed=" << seed << " step=" << step << " "
                              << s.ToString();
        });
        VerifyModel(h, model, seed, step);
      }
    }
    // Drive the cut to a durable manifest, then final crash + recover.
    ASSERT_TRUE(h.ckpt->CheckpointNow().ok());
    checkpointed = true;
    ASSERT_TRUE(h.CrashAndRecover().ok());
    VerifyModel(h, model, seed, kSteps);

    // Bounded restart: with a durable checkpoint, a fresh reader replays
    // strictly less than the stream's total bytes.
    if (checkpointed) {
      RoNodeOptions ro_opts;
      ro_opts.wal_stream = h.opts.wal.stream;
      RoNode fresh(h.store.get(), ro_opts);
      ASSERT_TRUE(fresh.PollWal().ok());
      EXPECT_TRUE(fresh.ResumedFromCheckpoint());
      const uint64_t total = h.store->TotalBytes(h.opts.wal.stream);
      EXPECT_LT(fresh.WalBytesReplayed(), total)
          << "checkpointed recovery must replay only the WAL suffix";
      // And the reader still observes the model exactly.
      for (const auto& [k, v] : model) {
        auto got = fresh.Get(1, k);
        ASSERT_TRUE(got.ok()) << k;
        EXPECT_EQ(got.value(), v) << k;
      }
    }
  }
}

TEST(CheckpointPropertyTest, StepIsAlwaysSafeToInterleaveWithWrites) {
  // A dumber, denser interleaving: every write is followed by a checkpoint
  // step, so cuts constantly open/drain/publish while the tree mutates.
  const uint64_t seed = test::AnnouncedSeed(
      "CheckpointPropertyTest.StepIsAlwaysSafeToInterleaveWithWrites",
      0xC4EC5);
  Random rng(seed);
  Harness h;
  std::map<std::string, std::string> model;
  for (int i = 0; i < 600; ++i) {
    const std::string k = Key(rng.Next() % 64);
    const std::string v = "v" + std::to_string(i);
    ASSERT_TRUE(h.rw->Put(k, v).ok());
    model[k] = v;
    ASSERT_TRUE(h.ckpt->Step().ok()) << i;
  }
  EXPECT_GT(h.ckpt->epoch(), 0u) << "dense stepping must publish manifests";
  ASSERT_TRUE(h.CrashAndRecover().ok());
  VerifyModel(h, model, seed, 600);
}

}  // namespace
}  // namespace bg3::replication
