// Cross-module integration tests: the three engines must agree on graph
// semantics; GC must run safely under a live workload; replication must
// stay consistent while the graph layer drives it.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>

#include "bytegraph/bytegraph_db.h"
#include "cloud/cloud_store.h"
#include "common/random.h"
#include "core/graph_db.h"
#include "graph/edge.h"
#include "graph/traversal.h"
#include "refstore/ref_graph_store.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"
#include "workload/graph_gen.h"

namespace bg3 {
namespace {

// --- engine equivalence ---------------------------------------------------------

class EngineEquivalenceTest : public testing::Test {
 protected:
  void SetUp() override {
    bg3_store_ = std::make_unique<cloud::CloudStore>();
    bg_store_ = std::make_unique<cloud::CloudStore>();
    ref_store_ = std::make_unique<cloud::CloudStore>();
    core::GraphDBOptions bg3_opts;
    bg3_opts.forest.split_out_threshold = 32;
    bg3_ = std::make_unique<core::GraphDB>(bg3_store_.get(), bg3_opts);
    bytegraph::ByteGraphOptions bg_opts;
    bg_opts.max_node_edges = 16;
    bg_ = std::make_unique<bytegraph::ByteGraphDB>(bg_store_.get(), bg_opts);
    refstore::RefStoreOptions ref_opts;
    ref_opts.op_cost_iterations = 1;
    ref_ = std::make_unique<refstore::RefGraphStore>(ref_store_.get(), ref_opts);
    engines_ = {bg3_.get(), bg_.get(), ref_.get()};
  }

  std::unique_ptr<cloud::CloudStore> bg3_store_, bg_store_, ref_store_;
  std::unique_ptr<core::GraphDB> bg3_;
  std::unique_ptr<bytegraph::ByteGraphDB> bg_;
  std::unique_ptr<refstore::RefGraphStore> ref_;
  std::vector<graph::GraphEngine*> engines_;
};

TEST_F(EngineEquivalenceTest, IdenticalOpsIdenticalNeighborSets) {
  Random rng(77);
  for (int i = 0; i < 2000; ++i) {
    const graph::VertexId src = rng.Uniform(50);
    const graph::VertexId dst = rng.Uniform(500);
    const bool del = rng.Uniform(10) == 0;
    for (graph::GraphEngine* e : engines_) {
      if (del) {
        ASSERT_TRUE(e->DeleteEdge(src, 1, dst).ok());
      } else {
        ASSERT_TRUE(e->AddEdge(src, 1, dst, "p" + std::to_string(i), i + 1).ok());
      }
    }
  }
  for (graph::VertexId src = 0; src < 50; ++src) {
    std::vector<std::vector<graph::VertexId>> neighbor_sets;
    for (graph::GraphEngine* e : engines_) {
      std::vector<graph::Neighbor> out;
      ASSERT_TRUE(e->GetNeighbors(src, 1, 100000, &out).ok());
      std::vector<graph::VertexId> ids;
      for (const auto& n : out) ids.push_back(n.dst);
      EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end())) << e->name();
      neighbor_sets.push_back(std::move(ids));
    }
    EXPECT_EQ(neighbor_sets[0], neighbor_sets[1]) << "src=" << src;
    EXPECT_EQ(neighbor_sets[0], neighbor_sets[2]) << "src=" << src;
  }
}

TEST_F(EngineEquivalenceTest, TraversalsAgree) {
  workload::GraphGenOptions gen;
  gen.num_sources = 200;
  gen.num_dests = 200;
  gen.num_edges = 3000;
  for (graph::GraphEngine* e : engines_) {
    ASSERT_TRUE(workload::LoadGraph(e, gen).ok());
  }
  graph::TraversalOptions t;
  t.hops = 2;
  t.fanout_per_vertex = 1u << 30;  // unbounded: deterministic result set
  t.max_visited = 1u << 30;
  for (graph::VertexId start : {0ull, 5ull, 17ull}) {
    std::vector<size_t> sizes;
    for (graph::GraphEngine* e : engines_) {
      auto r = graph::KHopNeighbors(e, start, gen.edge_type, t);
      ASSERT_TRUE(r.ok());
      sizes.push_back(r.value().size());
    }
    EXPECT_EQ(sizes[0], sizes[1]);
    EXPECT_EQ(sizes[0], sizes[2]);
  }
}

// --- GC under live load -----------------------------------------------------------

TEST(GcUnderLoadTest, ConcurrentWritesAndGcKeepDataIntact) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 4096;
  cloud::CloudStore store(copts);
  core::GraphDBOptions opts;
  opts.gc_policy = core::GcPolicyKind::kWorkloadAware;
  opts.gc_target_dead_ratio = 0.01;
  opts.gc_min_fragmentation = 0.01;
  opts.forest.tree_options.consolidate_threshold = 4;
  core::GraphDB db(&store, opts);

  std::atomic<bool> stop{false};
  std::thread gc_thread([&] {
    while (!stop.load()) {
      ASSERT_TRUE(db.RunGcCycle().ok());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      for (int round = 0; round < 30; ++round) {
        for (int d = 0; d < 20; ++d) {
          ASSERT_TRUE(
              db.AddEdge(t, 1, d, "r" + std::to_string(round), 0).ok());
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  gc_thread.join();
  for (int t = 0; t < 3; ++t) {
    std::vector<graph::Neighbor> out;
    ASSERT_TRUE(db.GetNeighbors(t, 1, 100, &out).ok());
    ASSERT_EQ(out.size(), 20u);
    for (const auto& n : out) EXPECT_EQ(n.properties, "r29");
  }
}

// --- replication driven by the graph layer ------------------------------------------

TEST(GraphReplicationTest, RoNodeServesGraphReads) {
  cloud::CloudStore store;
  replication::RwNodeOptions rw_opts;
  rw_opts.tree.tree_id = 1;
  rw_opts.tree.max_leaf_entries = 32;
  rw_opts.tree.base_stream = store.CreateStream("base");
  rw_opts.tree.delta_stream = store.CreateStream("delta");
  rw_opts.wal.stream = store.CreateStream("wal");
  rw_opts.flush_group_pages = 8;
  replication::RwNode rw(&store, rw_opts);
  replication::RoNodeOptions ro_opts;
  ro_opts.wal_stream = rw_opts.wal.stream;
  replication::RoNode ro(&store, ro_opts);

  // Insert fund-transfer edges through the flat-key encoding.
  for (int i = 0; i < 300; ++i) {
    const auto key = graph::EncodeFlatEdgeKey(i % 20, 1, 1000 + i);
    ASSERT_TRUE(rw.Put(key, graph::EncodeEdgeValue(i, "amt")).ok());
  }
  // RO-side adjacency scan: all edges of (src=3, type=1).
  std::vector<bwtree::Entry> out;
  ASSERT_TRUE(ro.Scan(1, graph::EncodeFlatEdgePrefix(3, 1),
                      graph::EncodeFlatEdgePrefixEnd(3, 1), 1000, &out)
                  .ok());
  EXPECT_EQ(out.size(), 15u);  // 300 edges over 20 sources
  for (const auto& e : out) {
    graph::VertexId src, dst;
    graph::EdgeType type;
    ASSERT_TRUE(graph::DecodeFlatEdgeKey(Slice(e.key), &src, &type, &dst));
    EXPECT_EQ(src, 3u);
    EXPECT_EQ(type, 1u);
  }
}

// --- storage-cost comparison mechanism -----------------------------------------------

TEST(StorageCostTest, Bg3WritesFewerBytesThanByteGraphUnderChurn) {
  // The §4.2 "storage cost saving" mechanism at test scale: LSM compaction
  // rewrites data repeatedly, while BG3's delta-based engine appends far
  // less for the same logical workload.
  cloud::CloudStore bg3_store;
  core::GraphDBOptions bg3_opts;
  core::GraphDB bg3(&bg3_store, bg3_opts);

  cloud::CloudStore bg_store;
  bytegraph::ByteGraphOptions bg_opts;
  bg_opts.lsm.memtable_bytes = 4096;
  bg_opts.lsm.compaction.l0_compaction_trigger = 2;
  bg_opts.lsm.compaction.level_base_bytes = 16384;
  bytegraph::ByteGraphDB bg(&bg_store, bg_opts);

  Random rng(5);
  for (int i = 0; i < 5000; ++i) {
    const graph::VertexId src = rng.Uniform(100);
    const graph::VertexId dst = rng.Uniform(1000);
    ASSERT_TRUE(bg3.AddEdge(src, 1, dst, "props", 1).ok());
    ASSERT_TRUE(bg.AddEdge(src, 1, dst, "props", 1).ok());
  }
  EXPECT_LT(bg3_store.stats().append_bytes.Get(),
            bg_store.stats().append_bytes.Get());
}

}  // namespace
}  // namespace bg3
