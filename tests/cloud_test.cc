#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "cloud/cloud_store.h"
#include "cloud/latency_model.h"

namespace bg3::cloud {
namespace {

CloudStoreOptions SmallExtents(size_t capacity = 256) {
  CloudStoreOptions opts;
  opts.extent_capacity = capacity;
  return opts;
}

// --- append / read -----------------------------------------------------------

TEST(CloudStoreTest, AppendAndReadBack) {
  CloudStore store;
  const StreamId s = store.CreateStream("data");
  auto ptr = store.Append(s, "hello world");
  ASSERT_TRUE(ptr.ok());
  auto data = store.Read(ptr.value());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "hello world");
}

TEST(CloudStoreTest, CreateStreamIsIdempotentByName) {
  CloudStore store;
  EXPECT_EQ(store.CreateStream("a"), store.CreateStream("a"));
  EXPECT_NE(store.CreateStream("a"), store.CreateStream("b"));
}

TEST(CloudStoreTest, ReadUnknownStreamFails) {
  CloudStore store;
  PagePointer bogus{99, 0, 0, 4};
  EXPECT_FALSE(store.Read(bogus).ok());
}

TEST(CloudStoreTest, AppendRollsToNewExtentWhenFull) {
  CloudStore store(SmallExtents(64));
  const StreamId s = store.CreateStream("data");
  auto p1 = store.Append(s, std::string(40, 'a'));
  auto p2 = store.Append(s, std::string(40, 'b'));
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_NE(p1.value().extent_id, p2.value().extent_id);
  // Both remain readable.
  EXPECT_EQ(store.Read(p1.value()).value(), std::string(40, 'a'));
  EXPECT_EQ(store.Read(p2.value()).value(), std::string(40, 'b'));
}

TEST(CloudStoreTest, OversizedRecordGetsOwnExtent) {
  CloudStore store(SmallExtents(64));
  const StreamId s = store.CreateStream("data");
  const std::string big(500, 'x');
  auto ptr = store.Append(s, big);
  ASSERT_TRUE(ptr.ok());
  EXPECT_EQ(store.Read(ptr.value()).value(), big);
}

TEST(CloudStoreTest, IoStatsCountOpsAndBytes) {
  CloudStore store;
  const StreamId s = store.CreateStream("data");
  auto ptr = store.Append(s, "12345");
  BG3_IGNORE_STATUS(store.Read(ptr.value()));
  EXPECT_EQ(store.stats().append_ops.Get(), 1u);
  EXPECT_EQ(store.stats().append_bytes.Get(), 5u);
  EXPECT_EQ(store.stats().read_ops.Get(), 1u);
  EXPECT_EQ(store.stats().read_bytes.Get(), 5u);
}

// --- invalidation / space accounting ----------------------------------------

TEST(CloudStoreTest, MarkInvalidTracksDeadBytes) {
  CloudStore store;
  const StreamId s = store.CreateStream("data");
  auto p1 = store.Append(s, "aaaa");
  auto p2 = store.Append(s, "bbbb");
  (void)p2;
  EXPECT_EQ(store.TotalBytes(s), 8u);
  EXPECT_EQ(store.LiveBytes(s), 8u);
  store.MarkInvalid(p1.value());
  EXPECT_EQ(store.TotalBytes(s), 8u);
  EXPECT_EQ(store.LiveBytes(s), 4u);
}

TEST(CloudStoreTest, DoubleInvalidationIsIdempotent) {
  CloudStore store;
  const StreamId s = store.CreateStream("data");
  auto p = store.Append(s, "aaaa");
  store.MarkInvalid(p.value());
  store.MarkInvalid(p.value());
  EXPECT_EQ(store.LiveBytes(s), 0u);
}

TEST(CloudStoreTest, SealedExtentStatsExposeFragmentation) {
  CloudStore store(SmallExtents(64));
  const StreamId s = store.CreateStream("data");
  std::vector<PagePointer> ptrs;
  for (int i = 0; i < 6; ++i) {
    ptrs.push_back(store.Append(s, std::string(30, 'a' + i)).value());
  }
  store.MarkInvalid(ptrs[0]);
  auto stats = store.SealedExtentStats(s);
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats[0].total_records, 2u);
  EXPECT_EQ(stats[0].invalid_records, 1u);
  EXPECT_NEAR(stats[0].FragmentationRate(), 0.5, 1e-9);
}

TEST(CloudStoreTest, FreeExtentReleasesSpaceAndFailsReads) {
  CloudStore store(SmallExtents(64));
  const StreamId s = store.CreateStream("data");
  auto p1 = store.Append(s, std::string(40, 'a'));
  auto p2 = store.Append(s, std::string(40, 'b'));  // rolls extent
  (void)p2;
  const uint64_t before = store.TotalBytes(s);
  ASSERT_TRUE(store.FreeExtent(s, p1.value().extent_id).ok());
  EXPECT_LT(store.TotalBytes(s), before);
  auto read = store.Read(p1.value());
  EXPECT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsIOError() || read.status().IsNotFound());
}

TEST(CloudStoreTest, CannotFreeActiveExtent) {
  // The active extent is excluded from SealedExtentStats, and freeing the
  // whole stream's only extent aborts by contract — verify that sealed
  // stats never include the active extent instead.
  CloudStore store(SmallExtents(1024));
  const StreamId s = store.CreateStream("data");
  BG3_IGNORE_STATUS(store.Append(s, "live data"));
  EXPECT_TRUE(store.SealedExtentStats(s).empty());
}

TEST(CloudStoreTest, ReadValidRecordsSkipsInvalidated) {
  CloudStore store(SmallExtents(64));
  const StreamId s = store.CreateStream("data");
  auto p1 = store.Append(s, std::string(20, 'a'));
  auto p2 = store.Append(s, std::string(20, 'b'));
  auto p3 = store.Append(s, std::string(20, 'c'));
  (void)p3;  // p3 may land in the same extent; invalidate p2 only.
  store.MarkInvalid(p2.value());
  auto records = store.ReadValidRecords(s, p1.value().extent_id);
  ASSERT_TRUE(records.ok());
  for (const auto& [ptr, data] : records.value()) {
    EXPECT_NE(data, std::string(20, 'b'));
  }
}

// --- log tailing -------------------------------------------------------------

TEST(CloudStoreTest, TailRecordsFromStart) {
  CloudStore store(SmallExtents(64));
  const StreamId s = store.CreateStream("log");
  for (int i = 0; i < 5; ++i) {
    BG3_IGNORE_STATUS(store.Append(s, "rec" + std::to_string(i)));
  }
  auto records = store.TailRecords(s, PagePointer{}, 100).value();
  ASSERT_EQ(records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(records[i].second, "rec" + std::to_string(i));
  }
}

TEST(CloudStoreTest, TailRecordsResumesAfterCursor) {
  CloudStore store(SmallExtents(64));
  const StreamId s = store.CreateStream("log");
  for (int i = 0; i < 3; ++i) (void)store.Append(s, "a" + std::to_string(i));
  auto first = store.TailRecords(s, PagePointer{}, 100).value();
  ASSERT_EQ(first.size(), 3u);
  for (int i = 0; i < 3; ++i) (void)store.Append(s, "b" + std::to_string(i));
  auto rest = store.TailRecords(s, first.back().first, 100).value();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0].second, "b0");
}

TEST(CloudStoreTest, TailRecordsHonorsMaxRecords) {
  CloudStore store;
  const StreamId s = store.CreateStream("log");
  for (int i = 0; i < 10; ++i) (void)store.Append(s, "x");
  EXPECT_EQ(store.TailRecords(s, PagePointer{}, 4).value().size(), 4u);
}

TEST(CloudStoreTest, TailSpansExtentBoundaries) {
  CloudStore store(SmallExtents(32));
  const StreamId s = store.CreateStream("log");
  for (int i = 0; i < 8; ++i) {
    BG3_IGNORE_STATUS(store.Append(s, std::string(20, static_cast<char>('0' + i))));
  }
  auto all = store.TailRecords(s, PagePointer{}, 100).value();
  ASSERT_EQ(all.size(), 8u);
  auto tail = store.TailRecords(s, all[3].first, 100).value();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0].second[0], '4');
}

// --- manifest ----------------------------------------------------------------

TEST(CloudStoreTest, ManifestPutGetRoundTrip) {
  CloudStore store;
  uint64_t v1 = store.ManifestPut("root", "alpha");
  uint64_t version = 0;
  auto got = store.ManifestGet("root", &version);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "alpha");
  EXPECT_EQ(version, v1);
}

TEST(CloudStoreTest, ManifestVersionsMonotone) {
  CloudStore store;
  const uint64_t v1 = store.ManifestPut("k", "1");
  const uint64_t v2 = store.ManifestPut("k", "2");
  EXPECT_LT(v1, v2);
  EXPECT_EQ(store.ManifestGet("k").value(), "2");
}

TEST(CloudStoreTest, ManifestMissingKeyIsNotFound) {
  CloudStore store;
  EXPECT_TRUE(store.ManifestGet("ghost").status().IsNotFound());
}

// --- PagePointer codec ---------------------------------------------------------

TEST(PagePointerTest, EncodeDecodeRoundTrip) {
  PagePointer p{3, 42, 100, 57};
  std::string buf;
  p.EncodeTo(&buf);
  Slice in(buf);
  PagePointer q;
  ASSERT_TRUE(PagePointer::DecodeFrom(&in, &q));
  EXPECT_EQ(p, q);
  EXPECT_TRUE(in.empty());
}

TEST(PagePointerTest, DefaultIsNull) {
  PagePointer p;
  EXPECT_TRUE(p.IsNull());
  PagePointer q{0, 5, 0, 0};
  EXPECT_FALSE(q.IsNull());
}

// --- latency model -----------------------------------------------------------

TEST(LatencyModelTest, BaseCostsApply) {
  LatencyModelOptions o;
  o.append_base_us = 1000;
  o.read_base_us = 2000;
  o.bandwidth_mb_per_s = 100;
  LatencyModel m(o);
  EXPECT_EQ(m.AppendLatencyUs(0), 1000u);
  EXPECT_EQ(m.ReadLatencyUs(0), 2000u);
  // 1 MB at 100 MB/s = 10 ms transfer.
  EXPECT_EQ(m.AppendLatencyUs(1'000'000), 1000u + 10'000u);
}

TEST(LatencyModelTest, UtilizationInflatesLatency) {
  LatencyModel m;
  const uint64_t idle = m.ReadLatencyUs(4096);
  m.SetOfferedUtilization(0.5);
  EXPECT_NEAR(static_cast<double>(m.ReadLatencyUs(4096)),
              2.0 * static_cast<double>(idle), 2.0);
  m.SetOfferedUtilization(2.0);  // clamped to 0.99
  EXPECT_LT(m.ReadLatencyUs(4096), 101 * idle);
}

// --- observer ----------------------------------------------------------------

class RecordingObserver : public StoreObserver {
 public:
  void OnAppend(const PagePointer& ptr) override { ++appends; }
  void OnInvalidate(const PagePointer& ptr) override { ++invalidates; }
  void OnExtentFreed(StreamId stream, ExtentId extent) override { ++freed; }
  int appends = 0;
  int invalidates = 0;
  int freed = 0;
};

TEST(CloudStoreTest, ObserverSeesAllEvents) {
  CloudStore store(SmallExtents(32));
  RecordingObserver obs;
  store.SetObserver(&obs);
  const StreamId s = store.CreateStream("data");
  auto p1 = store.Append(s, std::string(20, 'a'));
  BG3_IGNORE_STATUS(store.Append(s, std::string(20, 'b')));  // seals extent of p1
  store.MarkInvalid(p1.value());
  ASSERT_TRUE(store.FreeExtent(s, p1.value().extent_id).ok());
  EXPECT_EQ(obs.appends, 2);
  EXPECT_EQ(obs.invalidates, 1);
  EXPECT_EQ(obs.freed, 1);
  store.SetObserver(nullptr);
}

// --- concurrency -------------------------------------------------------------

TEST(CloudStoreTest, ConcurrentAppendsAllReadable) {
  CloudStore store(SmallExtents(1024));
  const StreamId s = store.CreateStream("data");
  std::vector<std::thread> threads;
  std::vector<std::vector<PagePointer>> ptrs(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        auto p = store.Append(
            s, "t" + std::to_string(t) + ":" + std::to_string(i));
        ASSERT_TRUE(p.ok());
        ptrs[t].push_back(p.value());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 500; ++i) {
      auto data = store.Read(ptrs[t][i]);
      ASSERT_TRUE(data.ok());
      EXPECT_EQ(data.value(), "t" + std::to_string(t) + ":" + std::to_string(i));
    }
  }
  EXPECT_EQ(store.stats().append_ops.Get(), 2000u);
}

TEST(CloudStoreTest, ConcurrentAppendsToDistinctStreams) {
  CloudStore store;
  const StreamId a = store.CreateStream("a");
  const StreamId b = store.CreateStream("b");
  std::thread ta([&] {
    for (int i = 0; i < 1000; ++i) ASSERT_TRUE(store.Append(a, "x").ok());
  });
  std::thread tb([&] {
    for (int i = 0; i < 1000; ++i) ASSERT_TRUE(store.Append(b, "y").ok());
  });
  ta.join();
  tb.join();
  EXPECT_EQ(store.TotalBytes(a), 1000u);
  EXPECT_EQ(store.TotalBytes(b), 1000u);
}

}  // namespace
}  // namespace bg3::cloud

#include "common/crc32.h"

namespace bg3::cloud {
namespace {

TEST(Crc32cTest, KnownVectorsAndProperties) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_NE(Crc32c("abc", 3), Crc32c("abd", 3));
  EXPECT_EQ(Crc32c("abc", 3), Crc32c("abc", 3));
}

TEST(CloudStoreTest, CorruptionSurfacesAsChecksumError) {
  CloudStore store;
  const StreamId s = store.CreateStream("data");
  auto ptr = store.Append(s, "precious bytes");
  ASSERT_TRUE(ptr.ok());
  ASSERT_TRUE(store.Read(ptr.value()).ok());
  ASSERT_TRUE(store.CorruptRecordForTesting(ptr.value(), 3));
  auto read = store.Read(ptr.value());
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsCorruption());
}

TEST(CloudStoreTest, CorruptionOfOneRecordDoesNotAffectNeighbors) {
  CloudStore store;
  const StreamId s = store.CreateStream("data");
  auto p1 = store.Append(s, "record-one");
  auto p2 = store.Append(s, "record-two");
  ASSERT_TRUE(store.CorruptRecordForTesting(p1.value(), 0));
  EXPECT_TRUE(store.Read(p1.value()).status().IsCorruption());
  EXPECT_EQ(store.Read(p2.value()).value(), "record-two");
}

TEST(CloudStoreTest, CorruptUnknownRecordRejected) {
  CloudStore store;
  const StreamId s = store.CreateStream("data");
  auto p = store.Append(s, "abc");
  EXPECT_FALSE(store.CorruptRecordForTesting({s, 99, 0, 3}, 0));
  EXPECT_FALSE(store.CorruptRecordForTesting(p.value(), 100));  // past end
}

TEST(CloudStoreTest, ManifestListByPrefix) {
  CloudStore store;
  store.ManifestPut("pt/1/10", "a");
  store.ManifestPut("pt/1/11", "b");
  store.ManifestPut("pt/2/10", "c");
  store.ManifestPut("other", "d");
  auto all = store.ManifestList("pt/");
  ASSERT_EQ(all.size(), 3u);
  auto tree1 = store.ManifestList("pt/1/");
  ASSERT_EQ(tree1.size(), 2u);
  EXPECT_EQ(tree1[0].first, "pt/1/10");
  EXPECT_TRUE(store.ManifestList("zzz").empty());
}

TEST(CloudStoreTest, TruncateStreamBeforeFreesOnlySealedPrefix) {
  CloudStoreOptions opts;
  opts.extent_capacity = 32;
  CloudStore store(opts);
  const StreamId s = store.CreateStream("wal");
  std::vector<PagePointer> ptrs;
  for (int i = 0; i < 10; ++i) {
    ptrs.push_back(store.Append(s, std::string(20, 'a' + i)).value());
  }
  const ExtentId cut = ptrs[5].extent_id;
  const size_t freed = store.TruncateStreamBefore(s, cut);
  EXPECT_GT(freed, 0u);
  // Records before the cut are gone; at/after the cut still readable.
  EXPECT_FALSE(store.Read(ptrs[0]).ok());
  EXPECT_TRUE(store.Read(ptrs[5]).ok());
  EXPECT_TRUE(store.Read(ptrs[9]).ok());
}

}  // namespace
}  // namespace bg3::cloud
