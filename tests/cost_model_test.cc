// Cost model (DESIGN.md §5.8): pricing arithmetic against hand-computed
// fixtures, and the process-wide CostAccounting fold into bg3.cost.*
// counters (integer nano-USD, so attribution sums stay exact).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/cost_model.h"
#include "common/metrics_registry.h"
#include "common/op_stats.h"

namespace bg3 {
namespace {

constexpr uint64_t kGiB = 1024ull * 1024 * 1024;

TEST(CostModelTest, DefaultS3LikeRequestPricing) {
  const CostModel m;
  // $0.40 per 1M GETs, $5.00 per 1M PUTs, free same-region transfer.
  EXPECT_DOUBLE_EQ(m.ReadCostUsd(1'000'000, 0), 0.4);
  EXPECT_DOUBLE_EQ(m.WriteCostUsd(1'000'000, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.ReadCostUsd(0, 10 * kGiB), 0.0);
  EXPECT_DOUBLE_EQ(m.WriteCostUsd(0, 10 * kGiB), 0.0);
  // $0.023 per GiB-month.
  EXPECT_DOUBLE_EQ(m.StorageCostUsdPerMonth(kGiB), 0.023);
  EXPECT_DOUBLE_EQ(m.StorageCostUsdPerMonth(0), 0.0);
}

TEST(CostModelTest, PerGbTransferPricing) {
  CostModelOptions opts;
  opts.usd_per_read_op = 0;
  opts.usd_per_write_op = 0;
  opts.usd_per_gb_read = 0.01;
  opts.usd_per_gb_written = 0.05;
  const CostModel m(opts);
  EXPECT_DOUBLE_EQ(m.ReadCostUsd(1000, 2 * kGiB), 0.02);
  EXPECT_DOUBLE_EQ(m.WriteCostUsd(1000, 2 * kGiB), 0.10);
  // Half a GiB prices linearly.
  EXPECT_DOUBLE_EQ(m.ReadCostUsd(0, kGiB / 2), 0.005);
}

TEST(CostModelTest, OpCostSumsReadsAndAppendsAcrossLayers) {
  CostModelOptions opts;
  opts.usd_per_read_op = 1.0;
  opts.usd_per_write_op = 10.0;
  opts.usd_per_gb_read = 0;
  opts.usd_per_gb_written = 0;
  const CostModel m(opts);

  OpStats s;
  {
    OpLayerScope bwtree(OpLayer::kBwtree);
    OpStats::RecordCloudRead(&s, 100);
    OpStats::RecordCloudRead(&s, 100);
  }
  {
    OpLayerScope wal(OpLayer::kWal);
    OpStats::RecordCloudAppend(&s, 300);
  }
  EXPECT_EQ(s.CloudReadOps(), 2u);
  EXPECT_EQ(s.CloudReadBytes(), 200u);
  EXPECT_EQ(s.CloudAppendOps(), 1u);
  EXPECT_EQ(s.CloudAppendBytes(), 300u);
  // 2 reads * $1 + 1 append * $10.
  EXPECT_DOUBLE_EQ(m.OpCostUsd(s), 12.0);
}

uint64_t CounterOrZero(const MetricsRegistry::Snapshot& snap,
                       const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

TEST(CostModelTest, AccountingFoldsIntoNanoUsdCounters) {
  // Simple prices so the expected nano-USD values are exact integers:
  // $0.001/read, $0.002/write.
  CostModelOptions opts;
  opts.usd_per_read_op = 1e-3;
  opts.usd_per_write_op = 2e-3;
  opts.usd_per_gb_read = 0;
  opts.usd_per_gb_written = 0;
  CostAccounting::Default().SetModel(opts);

  OpStats s;
  {
    OpLayerScope bwtree(OpLayer::kBwtree);
    OpStats::RecordCloudRead(&s, 4096);  // $0.001
    OpStats::RecordCloudRead(&s, 4096);  // $0.001
    OpStats::RecordCloudRead(&s, 4096);  // $0.001
  }
  {
    OpLayerScope wal(OpLayer::kWal);
    OpStats::RecordCloudAppend(&s, 512);  // $0.002
  }

  const auto before = MetricsRegistry::Default().TakeSnapshot();
  CostAccounting::Default().RecordOp(s, "cost_test_class");
  const auto after = MetricsRegistry::Default().TakeSnapshot();

  // 3 reads * 1e6 nano-USD into bwtree, 1 write * 2e6 into wal.
  EXPECT_EQ(CounterOrZero(after, "bg3.cost.layer.bwtree.nanousd") -
                CounterOrZero(before, "bg3.cost.layer.bwtree.nanousd"),
            3'000'000u);
  EXPECT_EQ(CounterOrZero(after, "bg3.cost.layer.wal.nanousd") -
                CounterOrZero(before, "bg3.cost.layer.wal.nanousd"),
            2'000'000u);
  EXPECT_EQ(CounterOrZero(after, "bg3.cost.class.cost_test_class.nanousd") -
                CounterOrZero(before, "bg3.cost.class.cost_test_class.nanousd"),
            5'000'000u);
  EXPECT_EQ(CounterOrZero(after, "bg3.cost.total_nanousd") -
                CounterOrZero(before, "bg3.cost.total_nanousd"),
            5'000'000u);
  EXPECT_EQ(CounterOrZero(after, "bg3.cost.requests") -
                CounterOrZero(before, "bg3.cost.requests"),
            1u);

  CostAccounting::Default().SetModel(CostModelOptions{});
}

TEST(CostModelTest, NullOrEmptyClassFoldsUnderDefault) {
  CostModelOptions opts;
  opts.usd_per_read_op = 1e-3;
  opts.usd_per_write_op = 0;
  CostAccounting::Default().SetModel(opts);

  OpStats s;
  OpStats::RecordCloudRead(&s, 1);
  const auto before = MetricsRegistry::Default().TakeSnapshot();
  CostAccounting::Default().RecordOp(s, nullptr);
  const auto after = MetricsRegistry::Default().TakeSnapshot();
  EXPECT_EQ(CounterOrZero(after, "bg3.cost.class.default.nanousd") -
                CounterOrZero(before, "bg3.cost.class.default.nanousd"),
            1'000'000u);

  CostAccounting::Default().SetModel(CostModelOptions{});
}

TEST(CostModelTest, ZeroStatsRecordNothingButCountTheRequest) {
  const OpStats s;
  const auto before = MetricsRegistry::Default().TakeSnapshot();
  CostAccounting::Default().RecordOp(s, "idle_class");
  const auto after = MetricsRegistry::Default().TakeSnapshot();
  EXPECT_EQ(CounterOrZero(after, "bg3.cost.total_nanousd"),
            CounterOrZero(before, "bg3.cost.total_nanousd"));
  EXPECT_EQ(CounterOrZero(after, "bg3.cost.requests") -
                CounterOrZero(before, "bg3.cost.requests"),
            1u);
}

TEST(CostModelTest, RenderCostzIsJsonWithPricingBlock) {
  const std::string doc = RenderCostz();
  EXPECT_EQ(doc.front(), '{');
  EXPECT_NE(doc.find("\"pricing\""), std::string::npos);
  EXPECT_NE(doc.find("\"usd_per_write_op\""), std::string::npos);
  EXPECT_NE(doc.find("\"by_class\""), std::string::npos);
  EXPECT_NE(doc.find("\"by_layer\""), std::string::npos);
}

}  // namespace
}  // namespace bg3
