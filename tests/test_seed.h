#ifndef BG3_TESTS_TEST_SEED_H_
#define BG3_TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace bg3::test {

/// Returns the test's RNG seed — `BG3_TEST_SEED` from the environment if
/// set (decimal or 0x-hex), else `default_seed` — and prints a replay line
/// to stderr so any failing log carries the exact recipe to reproduce it:
///
///   [bg3] <name> seed=12345 (BG3_TEST_SEED=12345 replays this run)
///
/// Randomized tests call this once per test (or per parameter) and derive
/// every Random they use from the returned value.
inline uint64_t AnnouncedSeed(const char* name, uint64_t default_seed) {
  uint64_t seed = default_seed;
  if (const char* env = std::getenv("BG3_TEST_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  }
  std::fprintf(stderr,
               "[bg3] %s seed=%llu (BG3_TEST_SEED=%llu replays this run)\n",
               name, static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(seed));
  return seed;
}

}  // namespace bg3::test

#endif  // BG3_TESTS_TEST_SEED_H_
