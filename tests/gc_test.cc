#include <gtest/gtest.h>

#include <memory>

#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/random.h"
#include "gc/extent_usage.h"
#include "gc/policy.h"
#include "gc/space_reclaimer.h"

namespace bg3::gc {
namespace {

// --- extent usage tracking -----------------------------------------------------

TEST(ExtentUsageTest, GradientZeroWithoutInvalidations) {
  ExtentUsage u;
  EXPECT_EQ(u.UpdateGradient(1000), 0.0);
}

TEST(ExtentUsageTest, TtlDeadlineFromLastAppend) {
  ExtentUsage u;
  u.last_append_us = 500;
  EXPECT_EQ(u.TtlDeadlineUs(0), 0u);
  EXPECT_EQ(u.TtlDeadlineUs(100), 600u);
}

TEST(ExtentUsageTrackerTest, TracksAppendTimestamps) {
  cloud::ManualTimeSource clock;
  ExtentUsageTracker tracker(&clock);
  clock.SetUs(100);
  tracker.OnAppend(cloud::PagePointer{0, 5, 0, 10});
  clock.SetUs(250);
  tracker.OnAppend(cloud::PagePointer{0, 5, 10, 10});
  const ExtentUsage u = tracker.GetUsage(0, 5);
  EXPECT_EQ(u.created_us, 100u);
  EXPECT_EQ(u.last_append_us, 250u);
}

TEST(ExtentUsageTrackerTest, HotExtentHasHigherGradient) {
  cloud::ManualTimeSource clock;
  ExtentUsageTracker tracker(&clock, /*gradient_window_us=*/1'000'000);
  // Extent 1: 10 invalidations in 10ms (hot). Extent 2: 2 in 10ms (cold).
  for (int i = 0; i < 10; ++i) {
    clock.AdvanceUs(1000);
    tracker.OnInvalidate(cloud::PagePointer{0, 1, static_cast<uint32_t>(i), 1});
  }
  tracker.OnInvalidate(cloud::PagePointer{0, 2, 0, 1});
  clock.AdvanceUs(10'000);
  tracker.OnInvalidate(cloud::PagePointer{0, 2, 1, 1});
  const uint64_t now = clock.NowUs();
  EXPECT_GT(tracker.GetUsage(0, 1).UpdateGradient(now),
            tracker.GetUsage(0, 2).UpdateGradient(now));
}

TEST(ExtentUsageTrackerTest, FreedExtentForgotten) {
  cloud::ManualTimeSource clock;
  ExtentUsageTracker tracker(&clock);
  clock.SetUs(10);
  tracker.OnAppend(cloud::PagePointer{0, 3, 0, 1});
  tracker.OnExtentFreed(0, 3);
  EXPECT_EQ(tracker.GetUsage(0, 3).last_append_us, 0u);
}

// --- policies ------------------------------------------------------------------

GcCandidate MakeCandidate(cloud::ExtentId id, uint32_t total, uint32_t invalid,
                          double gradient_invalids_per_window = 0.0,
                          uint64_t last_append_us = 0) {
  GcCandidate c;
  c.stats.id = id;
  c.stats.sealed = true;
  c.stats.total_records = total;
  c.stats.invalid_records = invalid;
  c.stats.used_bytes = total * 100;
  c.stats.dead_bytes = invalid * 100;
  c.usage.stream = 0;
  c.usage.extent = id;
  c.usage.last_append_us = last_append_us;
  if (gradient_invalids_per_window > 0) {
    // Construct a window yielding the requested rate at now=2e6.
    c.usage.window_start_us = 1'000'000;
    c.usage.window_start_invalid = 0;
    c.usage.invalid_count =
        static_cast<uint32_t>(gradient_invalids_per_window);
  }
  return c;
}

TEST(FifoPolicyTest, PicksOldestExtents) {
  FifoPolicy policy;
  SelectContext ctx;
  auto victims = policy.SelectVictims(
      {MakeCandidate(9, 10, 0), MakeCandidate(3, 10, 0), MakeCandidate(7, 10, 0)},
      2, ctx);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 3u);
  EXPECT_EQ(victims[1], 7u);
}

TEST(DirtyRatioPolicyTest, PicksHighestFragmentation) {
  DirtyRatioPolicy policy(0.05);
  SelectContext ctx;
  auto victims = policy.SelectVictims(
      {MakeCandidate(1, 10, 2), MakeCandidate(2, 10, 8), MakeCandidate(3, 10, 5)},
      2, ctx);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 2u);
  EXPECT_EQ(victims[1], 3u);
}

TEST(DirtyRatioPolicyTest, SkipsCleanExtents) {
  DirtyRatioPolicy policy(0.20);
  SelectContext ctx;
  auto victims = policy.SelectVictims(
      {MakeCandidate(1, 10, 1), MakeCandidate(2, 10, 0)}, 5, ctx);
  EXPECT_TRUE(victims.empty());
}

TEST(WorkloadAwarePolicyTest, PrefersColdExtents) {
  // Algorithm 2 / Fig. 5: at the same fragmentation, pick the extent whose
  // invalid count grows slowest (its remaining valid data will stay valid).
  WorkloadAwarePolicy policy(0.05, /*cold_pool_factor=*/1);
  SelectContext ctx;
  ctx.now_us = 2'000'000;
  auto hot = MakeCandidate(1, 10, 6, /*gradient=*/50.0);
  auto cold = MakeCandidate(2, 10, 6, /*gradient=*/1.0);
  auto victims = policy.SelectVictims({hot, cold}, 1, ctx);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2u);
}

TEST(WorkloadAwarePolicyTest, WithinColdPoolPrefersFragmentation) {
  WorkloadAwarePolicy policy(0.05, /*cold_pool_factor=*/4);
  SelectContext ctx;
  ctx.now_us = 2'000'000;
  auto a = MakeCandidate(1, 10, 3);
  auto b = MakeCandidate(2, 10, 9);
  auto victims = policy.SelectVictims({a, b}, 1, ctx);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2u);
}

TEST(WorkloadAwarePolicyTest, BypassesTtlExtents) {
  // "We bypass those extents and allow them to expire naturally."
  WorkloadAwarePolicy policy(0.05);
  SelectContext ctx;
  ctx.now_us = 2'000'000;
  ctx.ttl_us = 60'000'000;
  auto c = MakeCandidate(1, 10, 9, 0.0, /*last_append_us=*/1'000'000);
  EXPECT_TRUE(policy.SelectVictims({c}, 4, ctx).empty());
  ctx.ttl_us = 0;  // without TTL the same extent is a normal victim
  EXPECT_EQ(policy.SelectVictims({c}, 4, ctx).size(), 1u);
}

// --- reclaimer end-to-end ---------------------------------------------------------

struct GcFixture {
  explicit GcFixture(GcPolicy* policy, ReclaimOptions ropts = {},
                     size_t extent_capacity = 2048) {
    cloud::CloudStoreOptions copts;
    copts.extent_capacity = extent_capacity;
    store = std::make_unique<cloud::CloudStore>(copts);
    tracker = std::make_unique<ExtentUsageTracker>(&clock);
    store->SetObserver(tracker.get());
    bwtree::BwTreeOptions topts;
    topts.consolidate_threshold = 4;
    topts.base_stream = store->CreateStream("base");
    topts.delta_stream = store->CreateStream("delta");
    topts.tolerate_missing_extents = ropts.ttl_us != 0;
    tree = std::make_unique<bwtree::BwTree>(store.get(), topts);
    resolver = std::make_unique<SingleTreeResolver>(tree.get());
    reclaimer = std::make_unique<SpaceReclaimer>(store.get(), resolver.get(),
                                                 policy, tracker.get(), ropts);
  }
  cloud::ManualTimeSource clock;
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<ExtentUsageTracker> tracker;
  std::unique_ptr<bwtree::BwTree> tree;
  std::unique_ptr<SingleTreeResolver> resolver;
  std::unique_ptr<SpaceReclaimer> reclaimer;
};

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

TEST(SpaceReclaimerTest, ReclaimsFragmentedExtentsAndPreservesData) {
  DirtyRatioPolicy policy(0.01);
  ReclaimOptions ropts;
  ropts.target_dead_ratio = 0.01;
  GcFixture f(&policy, ropts, 1024);
  // Churn a small key set so old base/delta records become invalid.
  for (int round = 0; round < 50; ++round) {
    f.clock.AdvanceUs(1000);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(f.tree->Upsert(Key(i), "r" + std::to_string(round)).ok());
    }
  }
  const uint64_t dead_before =
      f.store->TotalBytes(0) - f.store->LiveBytes(0);
  EXPECT_GT(dead_before, 0u);
  CycleResult total;
  for (int i = 0; i < 20; ++i) {
    auto r = f.reclaimer->RunCycle(0, 4);
    ASSERT_TRUE(r.ok());
    total.extents_reclaimed += r.value().extents_reclaimed;
  }
  EXPECT_GT(total.extents_reclaimed, 0u);
  EXPECT_GT(f.store->stats().extents_freed.Get(), 0u);
  // All data still correct after relocation.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(f.tree->Get(Key(i)).value(), "r49");
  }
}

TEST(SpaceReclaimerTest, NoReclaimBelowDeadRatioTarget) {
  DirtyRatioPolicy policy(0.01);
  ReclaimOptions ropts;
  ropts.target_dead_ratio = 0.99;  // effectively never
  GcFixture f(&policy, ropts, 512);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
    }
  }
  auto r = f.reclaimer->RunCycle(0, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().extents_reclaimed, 0u);
  EXPECT_EQ(r.value().bytes_moved, 0u);
}

TEST(SpaceReclaimerTest, TtlExpiryFreesWithoutMoving) {
  WorkloadAwarePolicy policy(0.01);
  ReclaimOptions ropts;
  ropts.ttl_us = 1'000'000;  // 1s TTL
  ropts.target_dead_ratio = 0.0;
  GcFixture f(&policy, ropts, 1024);
  for (int i = 0; i < 200; ++i) {
    f.clock.AdvanceUs(100);
    ASSERT_TRUE(f.tree->Upsert(Key(i), std::string(64, 'v')).ok());
  }
  const uint64_t bytes_before = f.store->TotalBytes();
  f.clock.AdvanceUs(10'000'000);  // everything expires
  auto r = f.reclaimer->RunCycle(0, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().extents_expired, 0u);
  EXPECT_EQ(r.value().bytes_moved, 0u);  // zero background movement
  EXPECT_LT(f.store->TotalBytes(), bytes_before);
}

TEST(SpaceReclaimerTest, WorkloadAwareMovesLessThanDirtyRatioUnderSkew) {
  // The Table 2 (workload 1) effect: with hot/cold extents, choosing cold
  // victims moves fewer bytes for the same reclamation effort.
  auto run = [](GcPolicy* policy) {
    ReclaimOptions ropts;
    ropts.target_dead_ratio = 0.01;
    GcFixture f(policy, ropts, 2048);
    Random rng(17);
    // Hot keys overwritten constantly; cold keys written once then rarely.
    for (int i = 0; i < 400; ++i) {
      EXPECT_TRUE(f.tree->Upsert(Key(1000 + i), std::string(32, 'c')).ok());
    }
    uint64_t moved = 0;
    for (int round = 0; round < 40; ++round) {
      f.clock.AdvanceUs(2000);
      for (int i = 0; i < 40; ++i) {
        const int hot = static_cast<int>(rng.Uniform(10));
        EXPECT_TRUE(f.tree->Upsert(Key(hot), std::string(32, 'h')).ok());
      }
      auto r = f.reclaimer->RunCycle(0, 1);
      EXPECT_TRUE(r.ok());
      moved += r.value().bytes_moved;
      auto r2 = f.reclaimer->RunCycle(1, 1);
      EXPECT_TRUE(r2.ok());
      moved += r2.value().bytes_moved;
    }
    return moved;
  };
  DirtyRatioPolicy dirty(0.01);
  WorkloadAwarePolicy aware(0.01);
  const uint64_t moved_dirty = run(&dirty);
  const uint64_t moved_aware = run(&aware);
  EXPECT_LE(moved_aware, moved_dirty);
}

TEST(SpaceReclaimerTest, TotalsAccumulateAcrossCycles) {
  DirtyRatioPolicy policy(0.01);
  ReclaimOptions ropts;
  ropts.target_dead_ratio = 0.0;
  GcFixture f(&policy, ropts, 512);
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(f.tree->Upsert(Key(i), std::string(40, 'x')).ok());
    }
  }
  BG3_IGNORE_STATUS(f.reclaimer->RunCycle(0, 2));
  BG3_IGNORE_STATUS(f.reclaimer->RunCycle(0, 2));
  EXPECT_GE(f.reclaimer->totals().extents_examined, 2u);
}

}  // namespace
}  // namespace bg3::gc

namespace bg3::gc {
namespace {

TEST(HybridTtlGradientPolicyTest, BypassesOnlyNearExpiryExtents) {
  // §4.4 future work: a 30-day-TTL workload must not strand dead space for
  // the whole retention period — only extents about to expire are skipped.
  HybridTtlGradientPolicy policy(/*bypass_window_us=*/10'000'000, 0.05, 1);
  SelectContext ctx;
  ctx.now_us = 100'000'000;
  ctx.ttl_us = 50'000'000;
  // Expires at 105s: within the 10s bypass window of now=100s -> skipped.
  auto near_expiry = MakeCandidate(1, 10, 8, 0.0, /*last_append=*/55'000'000);
  // Expires at 145s: far away -> eligible despite the TTL.
  auto far_expiry = MakeCandidate(2, 10, 8, 0.0, /*last_append=*/95'000'000);
  auto victims = policy.SelectVictims({near_expiry, far_expiry}, 4, ctx);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2u);
}

TEST(HybridTtlGradientPolicyTest, NoTtlBehavesLikeWorkloadAware) {
  HybridTtlGradientPolicy hybrid(10'000'000, 0.05, 1);
  WorkloadAwarePolicy aware(0.05, 1);
  SelectContext ctx;
  ctx.now_us = 2'000'000;
  std::vector<GcCandidate> c = {MakeCandidate(1, 10, 6, 50.0),
                                MakeCandidate(2, 10, 6, 1.0)};
  EXPECT_EQ(hybrid.SelectVictims(c, 1, ctx), aware.SelectVictims(c, 1, ctx));
}

TEST(WorkloadAwarePolicyTest, FullyDeadExtentsAreFreeWins) {
  // Regression: a just-finished-dying extent has a high gradient but zero
  // valid data; it must be selected first, not deferred as "hot".
  WorkloadAwarePolicy policy(0.05, 1);
  SelectContext ctx;
  ctx.now_us = 2'000'000;
  auto dead_hot = MakeCandidate(1, 10, 10, /*gradient=*/100.0);
  auto cold_partial = MakeCandidate(2, 10, 6, /*gradient=*/0.5);
  auto victims = policy.SelectVictims({cold_partial, dead_hot}, 1, ctx);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 1u);
}

}  // namespace
}  // namespace bg3::gc
