#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "bytegraph/bytegraph_db.h"
#include "cloud/cloud_store.h"

namespace bg3::bytegraph {
namespace {

struct BgFixture {
  explicit BgFixture(ByteGraphOptions opts = {}) {
    store = std::make_unique<cloud::CloudStore>();
    opts.lsm.memtable_bytes = 4096;
    opts.lsm.compaction.l0_compaction_trigger = 2;
    opts.lsm.compaction.level_base_bytes = 16384;
    db = std::make_unique<ByteGraphDB>(store.get(), opts);
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<ByteGraphDB> db;
};

TEST(ByteGraphTest, VertexRoundTrip) {
  BgFixture f;
  ASSERT_TRUE(f.db->AddVertex(1, "props").ok());
  EXPECT_EQ(f.db->GetVertex(1).value(), "props");
  EXPECT_TRUE(f.db->GetVertex(2).status().IsNotFound());
}

TEST(ByteGraphTest, EdgeRoundTrip) {
  BgFixture f;
  ASSERT_TRUE(f.db->AddEdge(1, 1, 2, "p12", 10).ok());
  EXPECT_EQ(f.db->GetEdge(1, 1, 2).value(), "p12");
  EXPECT_TRUE(f.db->GetEdge(1, 1, 3).status().IsNotFound());
}

TEST(ByteGraphTest, EdgeOverwriteKeepsNewest) {
  BgFixture f;
  ASSERT_TRUE(f.db->AddEdge(1, 1, 2, "old", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(1, 1, 2, "new", 2).ok());
  EXPECT_EQ(f.db->GetEdge(1, 1, 2).value(), "new");
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(1, 1, 10, &out).ok());
  EXPECT_EQ(out.size(), 1u);  // no duplicate
}

TEST(ByteGraphTest, DeleteEdge) {
  BgFixture f;
  ASSERT_TRUE(f.db->AddEdge(1, 1, 2, "p", 1).ok());
  ASSERT_TRUE(f.db->DeleteEdge(1, 1, 2).ok());
  EXPECT_TRUE(f.db->GetEdge(1, 1, 2).status().IsNotFound());
  ASSERT_TRUE(f.db->DeleteEdge(9, 9, 9).ok());  // absent: no-op
}

TEST(ByteGraphTest, NeighborsSortedAcrossNodeSplits) {
  ByteGraphOptions opts;
  opts.max_node_edges = 16;  // force edge-tree node splits
  BgFixture f(opts);
  for (int d = 499; d >= 0; --d) {
    ASSERT_TRUE(f.db->AddEdge(7, 1, d, std::to_string(d), 1).ok());
  }
  EXPECT_GT(f.db->stats().node_splits.Get(), 0u);
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(7, 1, 1000, &out).ok());
  ASSERT_EQ(out.size(), 500u);
  for (int d = 0; d < 500; ++d) {
    EXPECT_EQ(out[d].dst, static_cast<graph::VertexId>(d));
    EXPECT_EQ(out[d].properties, std::to_string(d));
  }
}

TEST(ByteGraphTest, NeighborsLimit) {
  BgFixture f;
  for (int d = 0; d < 50; ++d) {
    ASSERT_TRUE(f.db->AddEdge(7, 1, d, "", 1).ok());
  }
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(7, 1, 12, &out).ok());
  EXPECT_EQ(out.size(), 12u);
}

TEST(ByteGraphTest, AdjacencyListsIsolatedByTypeAndSrc) {
  BgFixture f;
  ASSERT_TRUE(f.db->AddEdge(1, 1, 100, "a", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(1, 2, 101, "b", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(2, 1, 102, "c", 1).ok());
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(1, 1, 10, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst, 100u);
}

TEST(ByteGraphTest, DataSurvivesLsmFlushesAndCompactions) {
  ByteGraphOptions opts;
  opts.cache_bytes = 0;  // no BGS cache: every read goes through the LSM
  BgFixture f(opts);
  for (int d = 0; d < 800; ++d) {
    ASSERT_TRUE(f.db->AddEdge(d % 20, 1, d, std::to_string(d), 1).ok());
  }
  ASSERT_TRUE(f.db->Flush().ok());
  for (int d = 0; d < 800; ++d) {
    EXPECT_EQ(f.db->GetEdge(d % 20, 1, d).value(), std::to_string(d)) << d;
  }
}

TEST(ByteGraphTest, CacheHitsReduceLsmTraffic) {
  BgFixture f;
  for (int d = 0; d < 100; ++d) {
    ASSERT_TRUE(f.db->AddEdge(1, 1, d, "", 1).ok());
  }
  const uint64_t misses_before = f.db->stats().cache_misses.Get();
  std::vector<graph::Neighbor> out;
  for (int round = 0; round < 10; ++round) {
    out.clear();
    ASSERT_TRUE(f.db->GetNeighbors(1, 1, 100, &out).ok());
  }
  // Hot adjacency stays cached: repeated reads add hits, not misses.
  EXPECT_EQ(f.db->stats().cache_misses.Get(), misses_before);
  EXPECT_GT(f.db->stats().cache_hits.Get(), 0u);
}

TEST(ByteGraphTest, ConcurrentWritersOnDistinctVertices) {
  BgFixture f;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int d = 0; d < 200; ++d) {
        ASSERT_TRUE(f.db->AddEdge(t, 1, d, "v", 1).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) {
    std::vector<graph::Neighbor> out;
    ASSERT_TRUE(f.db->GetNeighbors(t, 1, 1000, &out).ok());
    EXPECT_EQ(out.size(), 200u);
  }
}

}  // namespace
}  // namespace bg3::bytegraph
