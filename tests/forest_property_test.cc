// Property-based forest tests: randomized per-owner workloads against a
// map<owner, map<key,value>> reference model, swept across split-out
// thresholds and INIT capacities (the forest must be semantically invisible
// regardless of where each owner's data physically lives).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "cloud/cloud_store.h"
#include "common/random.h"
#include "forest/forest.h"

namespace bg3::forest {
namespace {

struct ForestParam {
  size_t split_out_threshold;
  size_t init_tree_capacity;
  uint32_t consolidate_threshold;
};

std::string ParamName(const testing::TestParamInfo<ForestParam>& info) {
  return "split" + std::to_string(info.param.split_out_threshold) + "_cap" +
         std::to_string(info.param.init_tree_capacity) + "_cons" +
         std::to_string(info.param.consolidate_threshold);
}

class ForestModelTest : public testing::TestWithParam<ForestParam> {
 protected:
  void SetUp() override {
    cloud::CloudStoreOptions copts;
    copts.extent_capacity = 1 << 14;
    store_ = std::make_unique<cloud::CloudStore>(copts);
    ForestOptions opts;
    opts.split_out_threshold = GetParam().split_out_threshold;
    opts.init_tree_capacity = GetParam().init_tree_capacity;
    opts.tree_options.consolidate_threshold = GetParam().consolidate_threshold;
    opts.tree_options.max_leaf_entries = 32;
    opts.tree_options.base_stream = store_->CreateStream("base");
    opts.tree_options.delta_stream = store_->CreateStream("delta");
    forest_ = std::make_unique<BwTreeForest>(store_.get(), opts);
  }

  std::unique_ptr<cloud::CloudStore> store_;
  std::unique_ptr<BwTreeForest> forest_;
};

TEST_P(ForestModelTest, RandomOpsMatchReferenceModel) {
  std::map<OwnerId, std::map<std::string, std::string>> model;
  Random rng(GetParam().split_out_threshold * 7 +
             GetParam().init_tree_capacity);
  for (int i = 0; i < 4000; ++i) {
    const OwnerId owner = rng.Uniform(30);
    const std::string key = "s" + std::to_string(rng.Uniform(60));
    const int action = static_cast<int>(rng.Uniform(10));
    if (action < 6) {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(forest_->Upsert(owner, key, value).ok());
      model[owner][key] = value;
    } else if (action < 8) {
      ASSERT_TRUE(forest_->Delete(owner, key).ok());
      model[owner].erase(key);
    } else {
      auto got = forest_->Get(owner, key);
      auto oit = model.find(owner);
      const bool in_model =
          oit != model.end() && oit->second.count(key) > 0;
      if (in_model) {
        ASSERT_TRUE(got.ok()) << owner << "/" << key;
        EXPECT_EQ(got.value(), oit->second[key]);
      } else {
        EXPECT_TRUE(got.status().IsNotFound()) << owner << "/" << key;
      }
    }
  }
  // Final sweep: per-owner scans match the model exactly.
  for (const auto& [owner, entries] : model) {
    std::vector<bwtree::Entry> out;
    ASSERT_TRUE(forest_->ScanOwner(owner, "", 1u << 20, &out).ok());
    ASSERT_EQ(out.size(), entries.size()) << "owner " << owner;
    auto mit = entries.begin();
    for (const bwtree::Entry& e : out) {
      EXPECT_EQ(e.key, mit->first);
      EXPECT_EQ(e.value, mit->second);
      ++mit;
    }
  }
}

TEST_P(ForestModelTest, MidStreamDedicationIsTransparent) {
  std::map<OwnerId, std::map<std::string, std::string>> model;
  Random rng(99);
  for (int i = 0; i < 1500; ++i) {
    const OwnerId owner = rng.Uniform(8);
    const std::string key = "k" + std::to_string(rng.Uniform(40));
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(forest_->Upsert(owner, key, value).ok());
    model[owner][key] = value;
    if (i == 700) {
      // Force every owner into a dedicated tree mid-stream.
      for (OwnerId o = 0; o < 8; ++o) {
        ASSERT_TRUE(forest_->DedicateOwner(o).ok());
      }
    }
  }
  for (const auto& [owner, entries] : model) {
    for (const auto& [key, value] : entries) {
      EXPECT_EQ(forest_->Get(owner, key).value(), value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ForestModelTest,
    testing::Values(ForestParam{~0ull, ~0ull, 10},  // everything in INIT
                    ForestParam{0, ~0ull, 10},      // everything dedicated
                    ForestParam{20, ~0ull, 10},     // mixed by threshold
                    ForestParam{50, 300, 10},       // capacity evictions
                    ForestParam{20, 200, 3},        // aggressive everything
                    ForestParam{5, ~0ull, 4}),
    ParamName);

}  // namespace
}  // namespace bg3::forest
