// Restart harness tests (DESIGN.md §5.7): two-phase bounded-time RW
// restart (RwRestart), deterministic crash-point schedules at every
// cloud-I/O class boundary (including mid-checkpoint), GraphDB db-scope
// checkpoint/restore, and the cluster checkpointer wiring.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/cloud_store.h"
#include "cloud/fault_injector.h"
#include "common/random.h"
#include "core/graph_db.h"
#include "replication/checkpoint.h"
#include "replication/cluster.h"
#include "replication/restart.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"
#include "test_seed.h"

namespace bg3::replication {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

struct RestartFixture {
  explicit RestartFixture(size_t extent_capacity = 1 << 16) {
    cloud::CloudStoreOptions copts;
    copts.extent_capacity = extent_capacity;
    store = std::make_unique<cloud::CloudStore>(copts);
    opts.node.tree.tree_id = 1;
    opts.node.tree.max_leaf_entries = 16;
    opts.node.tree.base_stream = store->CreateStream("base");
    opts.node.tree.delta_stream = store->CreateStream("delta");
    opts.node.wal.stream = store->CreateStream("wal");
    opts.node.flush_group_pages = 1'000'000;  // checkpointer flushes, not GC
    opts.node.flush_group_mutations = 1'000'000'000;
    rw = std::make_unique<RwNode>(store.get(), opts.node);
  }

  void Checkpoint() {
    Checkpointer ckpt(store.get(), rw.get());
    ASSERT_TRUE(ckpt.CheckpointNow().ok());
    ASSERT_GT(ckpt.epoch(), 0u);
  }

  void Crash() { rw.reset(); }

  std::unique_ptr<cloud::CloudStore> store;
  RestartOptions opts;
  std::unique_ptr<RwNode> rw;
};

// --- RwRestart: two-phase bounded-time restart -------------------------------

TEST(RwRestartTest, ReadsGoLiveBeforeWarmCompletes) {
  RestartFixture f;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  f.Checkpoint();
  for (int i = 500; i < 530; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "suffix").ok());
  }
  f.Crash();

  RwRestart restart(f.store.get(), f.opts);
  ASSERT_TRUE(restart.Begin().ok());
  EXPECT_TRUE(restart.progress().reads_live);
  EXPECT_TRUE(restart.progress().resumed_from_checkpoint);
  EXPECT_GT(restart.progress().pages_remaining, 0u)
      << "restore must not be complete yet — that's the point";
  EXPECT_FALSE(restart.progress().warm_complete);

  // Demand-driven reads are correct *during* restore: checkpoint state and
  // the replayed suffix both serve before the warm sweep finishes.
  EXPECT_EQ(restart.Get(Key(3)).value(), "v3");
  EXPECT_EQ(restart.Get(Key(499)).value(), "v499");
  EXPECT_EQ(restart.Get(Key(520)).value(), "suffix");
  EXPECT_TRUE(restart.Get("absent").status().IsNotFound());

  std::vector<bwtree::Entry> out;
  ASSERT_TRUE(restart.Scan(Key(0), Key(10), 100, &out).ok());
  EXPECT_EQ(out.size(), 10u);

  // Warm in bounded steps to completion, then reopen the write path.
  ASSERT_TRUE(restart.RunToCompletion().ok());
  EXPECT_EQ(restart.progress().pages_remaining, 0u);
  auto node = restart.Take();
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE(restart.progress().warm_complete);
  auto rw = node.take();
  for (int i = 0; i < 530; ++i) {
    ASSERT_TRUE(rw->Get(Key(i)).ok()) << i;
  }
  // Writes resume with non-colliding LSNs/pages.
  for (int i = 530; i < 600; ++i) {
    ASSERT_TRUE(rw->Put(Key(i), "post-restart").ok());
  }
  EXPECT_EQ(rw->Get(Key(599)).value(), "post-restart");
}

TEST(RwRestartTest, ReplaysOnlySuffixWithCheckpoint) {
  RestartFixture f;
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "payload-payload-payload").ok());
  }
  f.Checkpoint();
  for (int i = 800; i < 830; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "suffix").ok());
  }
  f.Crash();

  RwRestart restart(f.store.get(), f.opts);
  ASSERT_TRUE(restart.Begin().ok());
  const RestartProgress& p = restart.progress();
  EXPECT_TRUE(p.resumed_from_checkpoint);
  EXPECT_GT(p.replayed_wal_bytes, 0u);
  EXPECT_LT(p.replayed_wal_bytes, p.total_wal_bytes / 4)
      << "a 30-record suffix of an 830-record WAL must not replay it all";

  // The full-replay baseline (resume disabled) pays the whole stream.
  RestartOptions full = f.opts;
  full.resume_from_checkpoint = false;
  RwRestart baseline(f.store.get(), full);
  ASSERT_TRUE(baseline.Begin().ok());
  EXPECT_FALSE(baseline.progress().resumed_from_checkpoint);
  EXPECT_GT(baseline.progress().replayed_wal_bytes,
            4 * p.replayed_wal_bytes);
  // Both restore views agree.
  EXPECT_EQ(restart.Get(Key(7)).value(), baseline.Get(Key(7)).value());
}

TEST(RwRestartTest, TimeToFirstReadBoundedAcrossWalSweep) {
  // The acceptance sweep: 1x/4x/16x WAL volume, constant post-checkpoint
  // suffix. Replayed bytes (the deterministic proxy for time-to-first-read)
  // must stay bounded while the WAL grows ~16x.
  uint64_t replayed[3] = {0, 0, 0};
  uint64_t total[3] = {0, 0, 0};
  const int scales[3] = {1, 4, 16};
  for (int s = 0; s < 3; ++s) {
    RestartFixture f;
    for (int i = 0; i < 100 * scales[s]; ++i) {
      ASSERT_TRUE(f.rw->Put(Key(i), "wal-volume-padding-padding").ok());
    }
    f.Checkpoint();
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(f.rw->Put(Key(1'000'000 + i), "suffix").ok());
    }
    f.Crash();
    RwRestart restart(f.store.get(), f.opts);
    ASSERT_TRUE(restart.Begin().ok());
    EXPECT_EQ(restart.Get(Key(0)).value(), "wal-volume-padding-padding");
    replayed[s] = restart.progress().replayed_wal_bytes;
    total[s] = restart.progress().total_wal_bytes;
  }
  EXPECT_GT(total[2], 8 * total[0]) << "sweep must actually grow the WAL";
  // Bounded: the 16x WAL replays about what the 1x WAL does (same suffix),
  // not 16x more. Allow 3x slack for batch-boundary straddle.
  EXPECT_LT(replayed[2], 3 * replayed[0] + 4096);
  for (int s = 0; s < 3; ++s) {
    EXPECT_LT(replayed[s], total[s]) << "scale " << scales[s];
  }
}

TEST(RwRestartTest, BeginWithoutCheckpointFallsBackToFullReplay) {
  RestartFixture f;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "x").ok());
  f.Crash();
  RwRestart restart(f.store.get(), f.opts);
  ASSERT_TRUE(restart.Begin().ok());
  EXPECT_FALSE(restart.progress().resumed_from_checkpoint);
  EXPECT_EQ(restart.Get(Key(42)).value(), "x");
}

TEST(RwRestartTest, GetBeforeBeginIsAnError) {
  RestartFixture f;
  RwRestart restart(f.store.get(), f.opts);
  EXPECT_TRUE(restart.Get(Key(0)).status().IsInvalidArgument());
  std::vector<bwtree::Entry> out;
  EXPECT_TRUE(restart.Scan(Key(0), Key(9), 10, &out).IsInvalidArgument());
}

// --- deterministic crash-point schedules -------------------------------------
//
// One-shot faults armed at a seeded index of every cloud-I/O operation
// class the restart path crosses (WAL tail, manifest get, page read, append)
// — recovery's retry budgets must absorb each and still reach model state.

class CrashPointScheduleTest : public ::testing::TestWithParam<cloud::FaultOp> {
};

using cloud::FaultOpName;

TEST_P(CrashPointScheduleTest, RecoveryAbsorbsFaultAtEveryBoundary) {
  const cloud::FaultOp op = GetParam();
  const uint64_t seed = test::AnnouncedSeed(
      (std::string("CrashPointSchedule/") + FaultOpName(op)).c_str(),
      0xC9A5 + static_cast<uint64_t>(op));
  // Several seeded schedules per boundary class: each arms the one-shot
  // fault at a different operation index, so successive runs crash the
  // restart path at successively later I/O boundaries.
  for (int schedule = 0; schedule < 4; ++schedule) {
    Random rng(seed + schedule * 0x9E3779B97F4A7C15ull);
    RestartFixture f;
    std::map<std::string, std::string> model;
    for (int i = 0; i < 200; ++i) {
      const std::string v = "v" + std::to_string(rng.Next() % 100);
      ASSERT_TRUE(f.rw->Put(Key(i), v).ok());
      model[Key(i)] = v;
    }
    f.Checkpoint();
    for (int i = 200; i < 240; ++i) {
      const std::string v = "s" + std::to_string(rng.Next() % 100);
      ASSERT_TRUE(f.rw->Put(Key(i), v).ok());
      model[Key(i)] = v;
    }
    f.Crash();

    cloud::FaultInjector fi(cloud::FaultInjectorOptions{.seed = seed});
    f.store->SetFaultInjector(&fi);
    const uint64_t at = rng.Next() % 8;  // early boundaries of the class
    fi.Arm(op, cloud::FaultClass::kTransientError, fi.OpCount(op) + at);

    RwRestart restart(f.store.get(), f.opts);
    ASSERT_TRUE(restart.Begin().ok())
        << FaultOpName(op) << " schedule=" << schedule << " " << fi.ToString();
    for (const auto& [k, v] : model) {
      ASSERT_EQ(restart.Get(k).value(), v)
          << FaultOpName(op) << " schedule=" << schedule;
    }
    ASSERT_TRUE(restart.RunToCompletion().ok()) << fi.ToString();
    auto node = restart.Take();
    ASSERT_TRUE(node.ok()) << fi.ToString();
    f.store->SetFaultInjector(nullptr);
    auto rw = node.take();
    for (const auto& [k, v] : model) {
      ASSERT_EQ(rw->Get(k).value(), v) << FaultOpName(op);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBoundaries, CrashPointScheduleTest,
                         ::testing::Values(cloud::FaultOp::kAppend,
                                           cloud::FaultOp::kRead,
                                           cloud::FaultOp::kManifestGet,
                                           cloud::FaultOp::kTail),
                         [](const ::testing::TestParamInfo<cloud::FaultOp>& i) {
                           return FaultOpName(i.param);
                         });

TEST(CrashPointScheduleTest, MidCheckpointFaultKeepsCutOpenThenPublishes) {
  RestartFixture f;
  f.opts.node.tree.retry.max_attempts = 1;  // faults hit, not absorbed
  f.rw = std::make_unique<RwNode>(f.store.get(), f.opts.node);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v").ok());
  }
  CheckpointerOptions copts;
  copts.max_pages_per_round = 2;
  Checkpointer ckpt(f.store.get(), f.rw.get(), copts);
  ASSERT_TRUE(ckpt.Step().ok());  // begin the cut
  ASSERT_TRUE(ckpt.CutInProgress());

  cloud::FaultInjector fi;
  f.store->SetFaultInjector(&fi);
  fi.ArmNext(cloud::FaultOp::kAppend, cloud::FaultClass::kTransientError);
  EXPECT_FALSE(ckpt.Step().ok()) << "un-retried flush must surface the fault";
  EXPECT_TRUE(ckpt.CutInProgress()) << "a failed step abandons the increment, "
                                       "not the cut";
  EXPECT_GT(ckpt.stats().step_errors.Get(), 0u);
  EXPECT_EQ(ckpt.epoch(), 0u) << "no manifest may publish from a torn cut";

  // Substrate heals: the same cut drains and publishes.
  f.store->SetFaultInjector(nullptr);
  ASSERT_TRUE(ckpt.CheckpointNow().ok());
  EXPECT_EQ(ckpt.epoch(), 1u);

  // And the checkpoint it eventually published is a valid recovery source.
  f.Crash();
  RwRestart restart(f.store.get(), f.opts);
  ASSERT_TRUE(restart.Begin().ok());
  EXPECT_TRUE(restart.progress().resumed_from_checkpoint);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(restart.Get(Key(i)).value(), "v") << i;
  }
}

// --- GraphDB db-scope checkpoint/restore -------------------------------------

core::GraphDBOptions CheckpointedDbOptions() {
  core::GraphDBOptions opts;
  opts.checkpoint.enabled = true;
  opts.checkpoint.max_pages_per_cycle = 8;
  return opts;
}

TEST(GraphDbCheckpointTest, CheckpointThenRestoreServesGraph) {
  auto store = std::make_unique<cloud::CloudStore>();
  {
    core::GraphDB db(store.get(), CheckpointedDbOptions());
    for (int v = 0; v < 50; ++v) {
      ASSERT_TRUE(db.AddVertex(v, "props-" + std::to_string(v)).ok());
    }
    for (int e = 0; e < 200; ++e) {
      ASSERT_TRUE(db.AddEdge(e % 10, 1, 100 + e, "edge", e).ok());
    }
    ASSERT_TRUE(db.CheckpointNow().ok());
    EXPECT_GE(db.checkpoint_epoch(), 1u);
    EXPECT_GT(db.checkpoint_pages_flushed(), 0u);
    EXPECT_GT(db.checkpoint_manifests_written(), 0u);
  }  // "crash": all volatile state gone

  core::GraphDB db(store.get(), CheckpointedDbOptions());
  EXPECT_TRUE(db.RestoredFromCheckpoint());
  EXPECT_FALSE(db.CheckpointFellBack());
  for (int v = 0; v < 50; ++v) {
    EXPECT_EQ(db.GetVertex(v).value(), "props-" + std::to_string(v)) << v;
  }
  for (int e = 0; e < 200; e += 13) {
    EXPECT_EQ(db.GetEdge(e % 10, 1, 100 + e).value(), "edge") << e;
  }
  std::vector<graph::Neighbor> nbrs;
  ASSERT_TRUE(db.GetNeighbors(3, 1, 1000, &nbrs).ok());
  EXPECT_EQ(nbrs.size(), 20u);

  // The restore queue drains; warmed pages account replay bytes.
  auto remaining = db.WarmRestoredPages(100000);
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(remaining.value(), 0u);

  // The restored instance checkpoints onward from the restored epoch.
  ASSERT_TRUE(db.AddVertex(999, "after-restore").ok());
  const uint64_t epoch = db.checkpoint_epoch();
  ASSERT_TRUE(db.CheckpointNow().ok());
  EXPECT_GT(db.checkpoint_epoch(), epoch);
}

TEST(GraphDbCheckpointTest, WritesPastCheckpointAreNotDurableWithoutWal) {
  // Honest-semantics test: db-scope durability is checkpoint-granular
  // (options.h documents it; the WAL-backed exact path is RwNode/RwRestart).
  auto store = std::make_unique<cloud::CloudStore>();
  {
    core::GraphDB db(store.get(), CheckpointedDbOptions());
    ASSERT_TRUE(db.AddVertex(1, "durable").ok());
    ASSERT_TRUE(db.CheckpointNow().ok());
    ASSERT_TRUE(db.AddVertex(2, "volatile").ok());  // never checkpointed
  }
  core::GraphDB db(store.get(), CheckpointedDbOptions());
  EXPECT_TRUE(db.RestoredFromCheckpoint());
  EXPECT_EQ(db.GetVertex(1).value(), "durable");
  EXPECT_TRUE(db.GetVertex(2).status().IsNotFound());
}

TEST(GraphDbCheckpointTest, TornHeadSlotFallsBackToPreviousEpoch) {
  auto store = std::make_unique<cloud::CloudStore>();
  uint64_t epoch2 = 0;
  {
    core::GraphDB db(store.get(), CheckpointedDbOptions());
    ASSERT_TRUE(db.AddVertex(1, "epoch1").ok());
    ASSERT_TRUE(db.CheckpointNow().ok());
    ASSERT_TRUE(db.AddVertex(2, "epoch2").ok());
    ASSERT_TRUE(db.CheckpointNow().ok());
    epoch2 = db.checkpoint_epoch();
  }
  // Tear the newest manifest slot: restore must fall back one epoch.
  store->ManifestPut(CheckpointSlotKey(core::GraphDB::kCheckpointScope, epoch2),
                     "torn-mid-write");
  core::GraphDB db(store.get(), CheckpointedDbOptions());
  EXPECT_TRUE(db.RestoredFromCheckpoint());
  EXPECT_TRUE(db.CheckpointFellBack());
  EXPECT_EQ(db.GetVertex(1).value(), "epoch1");
}

TEST(GraphDbCheckpointTest, BothSlotsTornComesUpFresh) {
  auto store = std::make_unique<cloud::CloudStore>();
  {
    core::GraphDB db(store.get(), CheckpointedDbOptions());
    ASSERT_TRUE(db.AddVertex(1, "x").ok());
    ASSERT_TRUE(db.CheckpointNow().ok());
  }
  store->ManifestPut(CheckpointSlotKey(core::GraphDB::kCheckpointScope, 0),
                     "torn");
  store->ManifestPut(CheckpointSlotKey(core::GraphDB::kCheckpointScope, 1),
                     "torn");
  core::GraphDB db(store.get(), CheckpointedDbOptions());
  EXPECT_FALSE(db.RestoredFromCheckpoint());
  // A fresh instance is fully functional.
  ASSERT_TRUE(db.AddVertex(7, "fresh").ok());
  EXPECT_EQ(db.GetVertex(7).value(), "fresh");
}

TEST(GraphDbCheckpointTest, BackgroundThreadCheckpointsContinuously) {
  auto store = std::make_unique<cloud::CloudStore>();
  core::GraphDBOptions opts = CheckpointedDbOptions();
  opts.checkpoint.interval_ms = 1;
  core::GraphDB db(store.get(), opts);
  db.StartCheckpointing();
  for (int v = 0; v < 300; ++v) {
    ASSERT_TRUE(db.AddVertex(v, "bg").ok());
  }
  // The decoupled thread must reach a durable manifest on its own.
  for (int spin = 0; spin < 2000 && db.checkpoint_epoch() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  db.StopCheckpointing();
  EXPECT_GT(db.checkpoint_epoch(), 0u);
  EXPECT_GT(db.checkpoint_manifests_written(), 0u);
}

// --- cluster wiring ----------------------------------------------------------

TEST(ClusterCheckpointTest, LeaderRecoveryResumesFromCheckpoint) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 512;  // small extents so truncation frees some
  cloud::CloudStore store(copts);
  ClusterOptions opts;
  opts.partitions = 2;
  opts.followers_per_partition = 1;
  opts.checkpointing = true;
  Bg3Cluster cluster(&store, opts);
  ASSERT_NE(cluster.checkpointer(0), nullptr);
  ASSERT_NE(cluster.checkpointer(1), nullptr);

  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(cluster.Put(Key(i), "v" + std::to_string(i)).ok());
  }
  for (int p = 0; p < cluster.partitions(); ++p) {
    ASSERT_TRUE(cluster.checkpointer(p)->CheckpointNow().ok());
  }
  for (int i = 400; i < 450; ++i) {
    ASSERT_TRUE(cluster.Put(Key(i), "suffix").ok());
  }
  // Followers consume the WAL, then the covered prefix is reclaimed.
  for (int i = 0; i < 450; i += 50) {
    ASSERT_TRUE(cluster.Get(Key(i)).ok());
  }
  size_t freed = 0;
  for (int p = 0; p < cluster.partitions(); ++p) freed += cluster.TruncateWal(p);
  EXPECT_GT(freed, 0u) << "checkpoints must unlock WAL truncation";

  // Leaders crash and recover from checkpoint + (possibly truncated) WAL.
  for (int p = 0; p < cluster.partitions(); ++p) {
    ASSERT_TRUE(cluster.CrashAndRecoverLeader(p).ok()) << p;
    EXPECT_NE(cluster.checkpointer(p), nullptr)
        << "recovered leader must get a fresh checkpointer";
  }
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(cluster.GetFromLeader(Key(i)).value(), "v" + std::to_string(i));
  }
  for (int i = 400; i < 450; ++i) {
    EXPECT_EQ(cluster.GetFromLeader(Key(i)).value(), "suffix");
  }
  // Followers (old cursors) and writes keep working after recovery.
  for (int i = 450; i < 470; ++i) {
    ASSERT_TRUE(cluster.Put(Key(i), "post").ok());
  }
  for (int i = 0; i < 470; i += 7) {
    EXPECT_TRUE(cluster.Get(Key(i)).ok()) << i;
  }
}

TEST(ClusterCheckpointTest, BackgroundCheckpointersRunUnderLoad) {
  cloud::CloudStore store;
  ClusterOptions opts;
  opts.partitions = 2;
  opts.checkpointing = true;
  opts.checkpointer.interval_ms = 1;
  Bg3Cluster cluster(&store, opts);
  cluster.StartCheckpointers();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(cluster.Put(Key(i), "load").ok());
  }
  for (int spin = 0; spin < 2000; ++spin) {
    bool all = true;
    for (int p = 0; p < cluster.partitions(); ++p) {
      all &= cluster.checkpointer(p)->epoch() > 0;
    }
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.StopCheckpointers();
  for (int p = 0; p < cluster.partitions(); ++p) {
    EXPECT_GT(cluster.checkpointer(p)->epoch(), 0u) << p;
  }
  for (int i = 0; i < 500; i += 17) {
    EXPECT_EQ(cluster.GetFromLeader(Key(i)).value(), "load") << i;
  }
}

TEST(ClusterCheckpointTest, CheckpointingOffMeansNoCheckpointer) {
  cloud::CloudStore store;
  ClusterOptions opts;
  Bg3Cluster cluster(&store, opts);
  EXPECT_EQ(cluster.checkpointer(0), nullptr);
  cluster.StartCheckpointers();  // no-op, must not crash
  cluster.StopCheckpointers();
}

}  // namespace
}  // namespace bg3::replication
