#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "cloud/types.h"
#include "common/clock.h"
#include "common/coding.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "common/metrics_registry.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/threadpool.h"
#include "test_seed.h"

namespace bg3 {
namespace {

// --- Status ------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesAndMessages) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");

  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::IOError("disk gone"); };
  auto outer = [&]() -> Status {
    BG3_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsIOError());
}

TEST(StatusTest, ReturnIfErrorPassesOk) {
  auto outer = []() -> Status {
    BG3_RETURN_IF_ERROR(Status::OK());
    return Status::NotFound("reached end");
  };
  EXPECT_TRUE(outer().IsNotFound());
}

// --- Result ------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = r.take();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto fetch = [](bool fail) -> Result<int> {
    if (fail) return Status::IOError("x");
    return 7;
  };
  auto use = [&](bool fail) -> Status {
    BG3_ASSIGN_OR_RETURN(int v, fetch(fail));
    EXPECT_EQ(v, 7);
    return Status::OK();
  };
  EXPECT_TRUE(use(false).ok());
  EXPECT_TRUE(use(true).IsIOError());
}

// --- Slice -------------------------------------------------------------------

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_EQ(s.ToString(), "hello");
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(Slice().empty());
}

TEST(SliceTest, CompareIsMemcmpOrder) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
}

TEST(SliceTest, EmbeddedNulBytesCompare) {
  const std::string a("a\0b", 3);
  const std::string b("a\0c", 3);
  EXPECT_LT(Slice(a).compare(Slice(b)), 0);
  EXPECT_EQ(Slice(a).size(), 3u);
}

TEST(SliceTest, StartsWithAndRemovePrefix) {
  Slice s("prefix-body");
  EXPECT_TRUE(s.starts_with("prefix"));
  EXPECT_FALSE(s.starts_with("body"));
  s.remove_prefix(7);
  EXPECT_EQ(s.ToString(), "body");
}

// --- coding ------------------------------------------------------------------

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  Slice in(buf);
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(GetFixed16(&in, &a));
  ASSERT_TRUE(GetFixed32(&in, &b));
  ASSERT_TRUE(GetFixed64(&in, &c));
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEF);
  EXPECT_EQ(c, 0x0123456789ABCDEFull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, FixedTruncatedFails) {
  std::string buf;
  PutFixed32(&buf, 7);
  buf.resize(3);
  Slice in(buf);
  uint32_t v;
  EXPECT_FALSE(GetFixed32(&in, &v));
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const uint64_t values[] = {0,       1,          127,        128,
                             16383,   16384,      (1u << 21), (1ull << 35),
                             ~0ull,   0xCAFEBABEull};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v));
    Slice in(buf);
    uint64_t out;
    ASSERT_TRUE(GetVarint64(&in, &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Varint32RoundTrip) {
  for (uint32_t v : {0u, 1u, 300u, 70000u, ~0u}) {
    std::string buf;
    PutVarint32(&buf, v);
    Slice in(buf);
    uint32_t out;
    ASSERT_TRUE(GetVarint32(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.pop_back();
  Slice in(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, "alpha");
  PutLengthPrefixedSlice(&buf, "");
  PutLengthPrefixedSlice(&buf, std::string(300, 'x'));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &c));
  EXPECT_EQ(a.ToString(), "alpha");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 300u);
}

TEST(CodingTest, LengthPrefixedTruncatedBodyFails) {
  std::string buf;
  PutVarint32(&buf, 10);
  buf += "short";
  Slice in(buf);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixedSlice(&in, &out));
}

// --- random / zipf -----------------------------------------------------------

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.Uniform(17), 17u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliApproximatesProbability) {
  Random r(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(ZipfTest, StaysInRange) {
  ZipfGenerator z(1000, 0.8, 42);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(), 1000u);
}

TEST(ZipfTest, IsSkewedTowardSmallIds) {
  ZipfGenerator z(100000, 0.9, 42);
  uint64_t top10 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (z.Next() < 10) ++top10;
  }
  // With theta=0.9 over 100k items, the top-10 items absorb a large
  // fraction of all draws — far beyond the uniform 0.01%.
  EXPECT_GT(top10, n / 10);
}

TEST(ZipfTest, LargeDomainConstructionIsFast) {
  // Uses the integral extrapolation beyond 2^20 items.
  ZipfGenerator z(50'000'000, 0.8, 1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Next(), 50'000'000u);
}

TEST(PowerLawDegreeTest, RespectsBounds) {
  PowerLawDegree d(2.0, 2, 500, 9);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t deg = d.Next();
    EXPECT_GE(deg, 2u);
    EXPECT_LE(deg, 500u);
  }
}

TEST(PowerLawDegreeTest, HeavyTailExists) {
  PowerLawDegree d(1.5, 1, 100000, 13);
  uint32_t max_deg = 0;
  for (int i = 0; i < 50000; ++i) max_deg = std::max(max_deg, d.Next());
  EXPECT_GT(max_deg, 1000u);  // tail reaches far beyond the minimum
}

// --- hash --------------------------------------------------------------------

TEST(HashTest, Fnv1aStableAndSeeded) {
  const uint64_t h1 = Fnv1a64("abc", 3);
  EXPECT_EQ(h1, Fnv1a64("abc", 3));
  EXPECT_NE(h1, Fnv1a64("abd", 3));
  EXPECT_NE(h1, Fnv1a64("abc", 3, 1));
}

TEST(HashTest, Mix64SpreadsSequentialIds) {
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 64; ++i) buckets.insert(Mix64(i) % 1024);
  EXPECT_GT(buckets.size(), 55u);  // nearly collision-free spread
}

// --- clock -------------------------------------------------------------------

TEST(ClockTest, WallClockMonotonic) {
  const uint64_t a = NowMicros();
  const uint64_t b = NowMicros();
  EXPECT_LE(a, b);
}

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock c;
  EXPECT_EQ(c.NowUs(), 0u);
  EXPECT_EQ(c.Advance(100), 100u);
  EXPECT_EQ(c.Advance(50), 150u);
  EXPECT_EQ(c.NowUs(), 150u);
}

TEST(VirtualClockTest, AdvanceToNeverMovesBackward) {
  VirtualClock c;
  c.Advance(500);
  EXPECT_EQ(c.AdvanceTo(200), 500u);
  EXPECT_EQ(c.AdvanceTo(900), 900u);
  EXPECT_EQ(c.NowUs(), 900u);
}

// --- metrics -----------------------------------------------------------------

TEST(CounterTest, SingleThreaded) {
  Counter c;
  c.Inc();
  c.Add(10);
  EXPECT_EQ(c.Get(), 11u);
  c.Reset();
  EXPECT_EQ(c.Get(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Get(), 80000u);
}

TEST(MetricsRegistryTest, NamedCountersPersist) {
  MetricsRegistry reg;
  reg.GetCounter("reads")->Add(3);
  reg.GetCounter("reads")->Add(4);
  reg.GetCounter("writes")->Inc();
  auto snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters["reads"], 7u);
  EXPECT_EQ(snap.counters["writes"], 1u);
}

// --- histogram ---------------------------------------------------------------

TEST(HistogramTest, EmptyIsZeroes) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(HistogramTest, TracksMinMeanMax) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Min(), 10u);
  EXPECT_EQ(h.Max(), 30u);
  EXPECT_NEAR(h.Mean(), 20.0, 0.001);
}

TEST(HistogramTest, PercentilesRoughlyCorrect) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  // Log-bucketed: accept ~25% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 500.0, 130.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 990.0, 250.0);
}

TEST(HistogramTest, ConcurrentRecords) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= 1000; ++i) h.Record(i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), 4000u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 1000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(HistogramTest, HugeValuesDoNotOverflow) {
  Histogram h;
  h.Record(~0ull);
  h.Record(1);
  EXPECT_EQ(h.Max(), ~0ull);
  EXPECT_GE(h.Percentile(0.99), 1u);
}

// --- threadpool --------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&done] { done.fetch_add(1); }).ok());
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, DrainWaitsForInFlight) {
  ThreadPool pool(2);
  std::atomic<bool> finished{false};
  ASSERT_TRUE(pool.Submit([&finished] {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(50));
                     finished.store(true);
                   }).ok());
  pool.Drain();
  EXPECT_TRUE(finished.load());
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndDropsLateTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }).ok());
  pool.Shutdown();
  pool.Shutdown();
  // A late Submit is refused, visibly: Aborted, and the task never runs.
  const Status late = pool.Submit([&count] { count.fetch_add(1); });
  EXPECT_TRUE(late.IsAborted()) << late.ToString();
  EXPECT_LE(count.load(), 1);
}

TEST(ThreadPoolTest, TrySubmitShedsWhenBoundedQueueIsFull) {
  // One worker pinned on a gate; capacity 2 fills with the next two tasks.
  ThreadPool pool(1, /*queue_capacity=*/2);
  std::mutex gate;
  gate.lock();
  ASSERT_TRUE(pool.TrySubmit([&gate] { gate.lock(); gate.unlock(); }));
  // Wait until the worker picked the gate task up, so the queue is empty.
  while (pool.QueueDepth() > 0) std::this_thread::yield();
  EXPECT_TRUE(pool.TrySubmit([] {}));
  EXPECT_TRUE(pool.TrySubmit([] {}));
  EXPECT_FALSE(pool.TrySubmit([] {})) << "full bounded queue must shed";
  EXPECT_EQ(pool.QueueDepth(), 2u);
  gate.unlock();
  pool.Drain();
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, BoundedSubmitBlocksUntilSpaceFrees) {
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::mutex gate;
  gate.lock();
  ASSERT_TRUE(pool.Submit([&gate] { gate.lock(); gate.unlock(); }).ok());
  while (pool.QueueDepth() > 0) std::this_thread::yield();
  ASSERT_TRUE(pool.Submit([] {}).ok());  // fills the queue
  std::atomic<bool> third_submitted{false};
  std::thread blocked([&] {
    // Blocks on the full queue until the gate task finishes.
    EXPECT_TRUE(pool.Submit([] {}).ok());
    third_submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_submitted.load()) << "Submit must apply backpressure";
  gate.unlock();
  blocked.join();
  EXPECT_TRUE(third_submitted.load());
  pool.Drain();
}

}  // namespace
}  // namespace bg3

namespace bg3 {
namespace {

TEST(LightCounterTest, BasicAndConcurrent) {
  LightCounter c;
  c.Inc();
  c.Add(4);
  EXPECT_EQ(c.Get(), 5u);
  c.Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 5000; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Get(), 20000u);
}

TEST(LightCounterTest, IsCompact) {
  // The reason it exists: millions of per-tree stats instances.
  EXPECT_LE(sizeof(LightCounter), 8u);
}

// --- retry/backoff ------------------------------------------------------------

TEST(BackoffTest, ScheduleIsDeterministicAndCapped) {
  RetryOptions opts;
  opts.jitter = false;  // assert the exact un-jittered schedule
  opts.initial_backoff_us = 1'000;
  opts.backoff_multiplier = 2.0;
  opts.max_backoff_us = 8'000;
  Backoff b(opts);
  EXPECT_EQ(b.NextDelayUs(), 1'000u);
  EXPECT_EQ(b.NextDelayUs(), 2'000u);
  EXPECT_EQ(b.NextDelayUs(), 4'000u);
  EXPECT_EQ(b.NextDelayUs(), 8'000u);
  EXPECT_EQ(b.NextDelayUs(), 8'000u) << "stays at the cap";
}

TEST(BackoffTest, FullJitterStaysWithinTheScheduleEnvelope) {
  const uint64_t seed =
      test::AnnouncedSeed("BackoffTest.FullJitterStaysWithinTheScheduleEnvelope",
                          0x7e57);
  RetryOptions opts;
  opts.initial_backoff_us = 1'000;
  opts.backoff_multiplier = 2.0;
  opts.max_backoff_us = 8'000;
  opts.jitter_seed = seed;
  Backoff jittered(opts);
  // Envelope = the un-jittered schedule; full jitter draws from [0, env].
  const uint64_t envelope[] = {1'000, 2'000, 4'000, 8'000, 8'000, 8'000};
  for (uint64_t env : envelope) {
    EXPECT_LE(jittered.NextDelayUs(), env);
  }
}

TEST(BackoffTest, JitterSeedPinsTheDelaySequence) {
  RetryOptions opts;
  opts.jitter_seed = 0xfeed;
  Backoff a(opts);
  Backoff b(opts);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.NextDelayUs(), b.NextDelayUs()) << "draw " << i;
  }
}

TEST(BackoffTest, AutoSeededInstancesDrawDistinctStreams) {
  // jitter_seed == 0: each Backoff gets its own stream, so concurrent
  // retriers woken by the same blip cannot re-synchronize into a storm.
  RetryOptions opts;
  opts.initial_backoff_us = 1'000'000;  // wide range: collisions unlikely
  opts.max_backoff_us = 1'000'000;
  Backoff a(opts);
  Backoff b(opts);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextDelayUs() != b.NextDelayUs()) ++differing;
  }
  EXPECT_GT(differing, 0) << "independent streams should diverge";
}

TEST(RetryTest, SucceedsAfterTransientFailures) {
  Counter retries, exhausted;
  RetryOptions opts;
  opts.retries = &retries;
  opts.retry_exhausted = &exhausted;
  int calls = 0;
  const Status s = RetryWithBackoff(opts, [&] {
    return ++calls < 3 ? Status::IOError("blip") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries.Get(), 2u);
  EXPECT_EQ(exhausted.Get(), 0u);
}

TEST(RetryTest, ExhaustionSurfacesTheFirstError) {
  Counter retries, exhausted;
  RetryOptions opts;
  opts.max_attempts = 3;
  opts.retries = &retries;
  opts.retry_exhausted = &exhausted;
  int calls = 0;
  const Status s = RetryWithBackoff(opts, [&] {
    return Status::IOError("attempt " + std::to_string(++calls));
  });
  EXPECT_TRUE(s.IsIOError());
  // The first failure is the root cause; later ones are often derived.
  EXPECT_NE(s.ToString().find("attempt 1"), std::string::npos) << s.ToString();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries.Get(), 2u);
  EXPECT_EQ(exhausted.Get(), 1u);
}

TEST(RetryTest, SingleAttemptBudgetDisablesRetries) {
  RetryOptions opts;
  opts.max_attempts = 1;
  int calls = 0;
  const Status s = RetryWithBackoff(opts, [&] {
    ++calls;
    return Status::IOError("down");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, NonRetryableErrorReturnsImmediately) {
  RetryOptions opts;
  int calls = 0;
  const Status s = RetryWithBackoff(opts, [&] {
    ++calls;
    return Status::InvalidArgument("caller bug");
  });
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(calls, 1) << "logic errors must not be retried";
}

TEST(RetryTest, CorruptionRetriedOnlyWhenOptedIn) {
  int calls = 0;
  auto corrupt_once = [&] {
    return ++calls == 1 ? Status::Corruption("wire flip") : Status::OK();
  };

  RetryOptions opts;  // default: corruption is terminal.
  EXPECT_TRUE(RetryWithBackoff(opts, corrupt_once).IsCorruption());

  calls = 0;
  opts.retry_corruption = true;  // read path: re-read the intact record.
  EXPECT_TRUE(RetryWithBackoff(opts, corrupt_once).ok());
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, SleepHookDrivesManualClockThroughTheSchedule) {
  cloud::ManualTimeSource clock;
  RetryOptions opts;
  opts.jitter = false;  // the clock assertion needs the exact schedule
  opts.max_attempts = 4;
  opts.initial_backoff_us = 1'000;
  opts.max_backoff_us = 64'000;
  opts.sleep = [&clock](uint64_t us) { clock.AdvanceUs(us); };
  int calls = 0;
  const Status s = RetryWithBackoff(opts, [&] {
    ++calls;
    return Status::IOError("down");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 4);
  // Three waits: 1ms + 2ms + 4ms of virtual time, nothing real elapsed.
  EXPECT_EQ(clock.NowUs(), 7'000u);
}

TEST(RetryTest, ResultVariantPassesValueThrough) {
  RetryOptions opts;
  int calls = 0;
  auto res = RetryResultWithBackoff(opts, [&]() -> Result<int> {
    return ++calls < 2 ? Result<int>(Status::Busy("throttled"))
                       : Result<int>(42);
  });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value(), 42);
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, ResultVariantSurfacesFirstErrorOnExhaustion) {
  RetryOptions opts;
  opts.max_attempts = 2;
  int calls = 0;
  auto res = RetryResultWithBackoff(opts, [&]() -> Result<int> {
    return Status::IOError("err " + std::to_string(++calls));
  });
  EXPECT_TRUE(res.status().IsIOError());
  EXPECT_NE(res.status().ToString().find("err 1"), std::string::npos);
}

// --- Lock rank ---------------------------------------------------------------
//
// Runtime half of the bg3-lint lock-rank pass (DESIGN.md §5.6): ranked
// mutexes push onto a thread-local held stack and out-of-order acquisition
// aborts in debug builds. Release builds compile all of it away, so every
// assertion on HeldDepth/TopRank is gated on BG3_DCHECK_IS_ON().

TEST(LockRankTest, IncreasingAcquisitionOrderIsAccepted) {
  Mutex low, high;
  low.SetRank(10, "test::low");
  high.SetRank(20, "test::high");
  low.Lock();
  high.Lock();
  if (BG3_DCHECK_IS_ON()) {
    EXPECT_EQ(lock_rank::HeldDepth(), 2);
    EXPECT_EQ(lock_rank::TopRank(), 20);
  }
  high.Unlock();
  low.Unlock();
  EXPECT_EQ(lock_rank::HeldDepth(), 0);
}

TEST(LockRankTest, UnrankedLocksOptOutOfChecking) {
  Mutex plain;  // never SetRank'd -> kUnranked
  plain.Lock();
  EXPECT_EQ(lock_rank::HeldDepth(), 0);
  EXPECT_EQ(lock_rank::TopRank(), lock_rank::kUnranked);
  plain.Unlock();
}

TEST(LockRankTest, TryLockSkipsOrderCheckButJoinsHeldStack) {
  Mutex low, high;
  low.SetRank(10, "test::low");
  high.SetRank(20, "test::high");
  // Out-of-order probe: a try-lock cannot deadlock, so no order check —
  // but the lock still joins the stack and guards later acquisitions.
  high.Lock();
  ASSERT_TRUE(low.TryLock());
  if (BG3_DCHECK_IS_ON()) {
    EXPECT_EQ(lock_rank::HeldDepth(), 2);
    EXPECT_EQ(lock_rank::TopRank(), 10);
  }
  low.Unlock();
  high.Unlock();
  EXPECT_EQ(lock_rank::HeldDepth(), 0);
}

TEST(LockRankTest, NonLifoReleaseDropsTheMatchingEntry) {
  Mutex low, high;
  low.SetRank(10, "test::low");
  high.SetRank(20, "test::high");
  low.Lock();
  high.Lock();
  low.Unlock();  // release out of LIFO order
  if (BG3_DCHECK_IS_ON()) {
    EXPECT_EQ(lock_rank::HeldDepth(), 1);
    EXPECT_EQ(lock_rank::TopRank(), 20);
  }
  high.Unlock();
  EXPECT_EQ(lock_rank::HeldDepth(), 0);
}

TEST(LockRankTest, SharedAcquisitionsAreRankedToo) {
  SharedMutex low;
  Mutex high;
  low.SetRank(10, "test::shared_low");
  high.SetRank(20, "test::high");
  low.ReaderLock();
  high.Lock();
  if (BG3_DCHECK_IS_ON()) {
    EXPECT_EQ(lock_rank::HeldDepth(), 2);
    EXPECT_EQ(lock_rank::TopRank(), 20);
  }
  high.Unlock();
  low.ReaderUnlock();
  EXPECT_EQ(lock_rank::HeldDepth(), 0);
}

TEST(LockRankTest, GeneratedRankingRespectsWitnessedEdges) {
  // Acquisition orders witnessed by the static pass; regeneration may
  // renumber the constants but must keep these edges strict.
  EXPECT_LT(lock_rank::kBwTreeForest_evict_mu, lock_rank::kOwnerState_mu);
  EXPECT_LT(lock_rank::kRwNode_flush_mu, lock_rank::kRwNode_staged_mu);
  EXPECT_LT(lock_rank::kRwNode_flush_mu, lock_rank::kRwNode_ckpt_ptr_mu);
  EXPECT_GT(lock_rank::kBwTreeForest_evict_mu, lock_rank::kUnranked);
}

TEST(LockRankDeathTest, DescendingAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low, high;
  low.SetRank(10, "test::low");
  high.SetRank(20, "test::high");
  if (BG3_DCHECK_IS_ON()) {
    EXPECT_DEATH(
        {
          high.Lock();
          low.Lock();
        },
        "lock-rank violation");
  } else {
    // Release builds don't check; the acquisitions simply proceed.
    high.Lock();
    low.Lock();
    low.Unlock();
    high.Unlock();
  }
}

TEST(LockRankDeathTest, ReleasingUnheldRankAborts) {
  if (!BG3_DCHECK_IS_ON()) return;  // inline no-op in release builds
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(lock_rank::NoteRelease(7), "does not hold");
}

TEST(RetryDeathTest, ZeroAttemptBudgetTrapsWhenDchecksOn) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RetryOptions opts;
  opts.max_attempts = 0;
  if (BG3_DCHECK_IS_ON()) {
    EXPECT_DEATH((void)RetryWithBackoff(opts, [] { return Status::OK(); }),
                 "BG3_CHECK failed");
  } else {
    // Release builds don't trap; the loop still runs the op at least once.
    EXPECT_TRUE(RetryWithBackoff(opts, [] { return Status::OK(); }).ok());
  }
}

}  // namespace
}  // namespace bg3
