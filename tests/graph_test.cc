#include <gtest/gtest.h>

#include <memory>

#include "cloud/cloud_store.h"
#include "core/graph_db.h"
#include "graph/edge.h"
#include "graph/pattern.h"
#include "graph/traversal.h"

namespace bg3::graph {
namespace {

// --- codecs -----------------------------------------------------------------

TEST(EdgeCodecTest, DstKeyOrdersNumerically) {
  EXPECT_LT(EncodeDstKey(1), EncodeDstKey(2));
  EXPECT_LT(EncodeDstKey(255), EncodeDstKey(256));
  EXPECT_LT(EncodeDstKey(0xFFFF), EncodeDstKey(0x10000));
  VertexId dst;
  ASSERT_TRUE(DecodeDstKey(EncodeDstKey(0xDEADBEEF), &dst));
  EXPECT_EQ(dst, 0xDEADBEEFu);
  EXPECT_FALSE(DecodeDstKey("short", &dst));
}

TEST(EdgeCodecTest, EdgeValueRoundTrip) {
  const std::string v = EncodeEdgeValue(123456, "props");
  TimestampUs ts;
  std::string props;
  ASSERT_TRUE(DecodeEdgeValue(v, &ts, &props));
  EXPECT_EQ(ts, 123456u);
  EXPECT_EQ(props, "props");
}

TEST(EdgeCodecTest, OwnerIdPacksSrcAndType) {
  EXPECT_NE(MakeOwnerId(1, 0), MakeOwnerId(1, 1));
  EXPECT_NE(MakeOwnerId(1, 0), MakeOwnerId(2, 0));
  EXPECT_EQ(MakeOwnerId(5, 3), MakeOwnerId(5, 3));
}

TEST(EdgeCodecTest, FlatEdgeKeyRoundTripAndOrder) {
  const std::string k = EncodeFlatEdgeKey(10, 2, 30);
  VertexId src, dst;
  EdgeType type;
  ASSERT_TRUE(DecodeFlatEdgeKey(k, &src, &type, &dst));
  EXPECT_EQ(src, 10u);
  EXPECT_EQ(type, 2u);
  EXPECT_EQ(dst, 30u);
  EXPECT_LT(EncodeFlatEdgeKey(1, 1, 99), EncodeFlatEdgeKey(2, 0, 0));
  EXPECT_LT(EncodeFlatEdgeKey(1, 1, 5), EncodeFlatEdgeKey(1, 2, 0));
}

TEST(EdgeCodecTest, FlatPrefixCoversExactlyOneAdjacency) {
  const std::string lo = EncodeFlatEdgePrefix(7, 1);
  const std::string hi = EncodeFlatEdgePrefixEnd(7, 1);
  EXPECT_LE(lo, EncodeFlatEdgeKey(7, 1, 0));
  EXPECT_LT(EncodeFlatEdgeKey(7, 1, ~0ull).substr(0, 12), hi);
  EXPECT_GE(EncodeFlatEdgeKey(7, 2, 0).substr(0, 12), hi);
}

// --- traversal over a real engine --------------------------------------------

struct EngineFixture {
  EngineFixture() {
    store = std::make_unique<cloud::CloudStore>();
    core::GraphDBOptions opts;
    db = std::make_unique<core::GraphDB>(store.get(), opts);
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<core::GraphDB> db;
};

TEST(TraversalTest, OneHop) {
  EngineFixture f;
  for (VertexId d : {2, 3, 4}) {
    ASSERT_TRUE(f.db->AddEdge(1, 1, d, "p", 1).ok());
  }
  TraversalOptions opts;
  opts.hops = 1;
  auto result = KHopNeighbors(f.db.get(), 1, 1, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 3u);
}

TEST(TraversalTest, TwoHopsExcludeStartAndDedup) {
  EngineFixture f;
  // 1 -> {2,3}; 2 -> {3,4}; 3 -> {1}.
  ASSERT_TRUE(f.db->AddEdge(1, 1, 2, "", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(1, 1, 3, "", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(2, 1, 3, "", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(2, 1, 4, "", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(3, 1, 1, "", 1).ok());
  TraversalOptions opts;
  opts.hops = 2;
  auto result = KHopNeighbors(f.db.get(), 1, 1, opts);
  ASSERT_TRUE(result.ok());
  // {2,3} at hop 1, {4} new at hop 2 (3 deduped, 1 excluded as start).
  EXPECT_EQ(result.value().size(), 3u);
}

TEST(TraversalTest, FanoutLimitBoundsExpansion) {
  EngineFixture f;
  for (VertexId d = 10; d < 60; ++d) {
    ASSERT_TRUE(f.db->AddEdge(1, 1, d, "", 1).ok());
  }
  TraversalOptions opts;
  opts.hops = 1;
  opts.fanout_per_vertex = 5;
  auto result = KHopNeighbors(f.db.get(), 1, 1, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 5u);
}

TEST(TraversalTest, IsReachableWithinHops) {
  EngineFixture f;
  // Chain 1 -> 2 -> 3 -> 4.
  for (VertexId v = 1; v < 4; ++v) {
    ASSERT_TRUE(f.db->AddEdge(v, 1, v + 1, "", 1).ok());
  }
  TraversalOptions opts;
  opts.hops = 3;
  EXPECT_TRUE(IsReachable(f.db.get(), 1, 4, 1, opts).value());
  opts.hops = 2;
  EXPECT_FALSE(IsReachable(f.db.get(), 1, 4, 1, opts).value());
  EXPECT_TRUE(IsReachable(f.db.get(), 1, 1, 1, opts).value());  // trivially
}

// --- pattern matching -----------------------------------------------------------

TEST(PatternTest, MatchPathFollowsEdgeTypes) {
  EngineFixture f;
  // user -(1)-> video -(2)-> author
  ASSERT_TRUE(f.db->AddEdge(100, 1, 200, "", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(200, 2, 300, "", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(200, 2, 301, "", 1).ok());
  PathPattern pattern;
  pattern.edge_types = {1, 2};
  auto matches = MatchPath(f.db.get(), 100, pattern);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches.value().size(), 2u);
  EXPECT_EQ(matches.value()[0][0], 200u);
  EXPECT_EQ(matches.value()[0][1], 300u);
}

TEST(PatternTest, MatchPathHonorsMaxMatches) {
  EngineFixture f;
  for (VertexId d = 0; d < 50; ++d) {
    ASSERT_TRUE(f.db->AddEdge(1, 1, 100 + d, "", 1).ok());
  }
  PathPattern pattern;
  pattern.edge_types = {1};
  pattern.fanout_per_step = 64;
  pattern.max_matches = 10;
  auto matches = MatchPath(f.db.get(), 1, pattern);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().size(), 10u);
}

TEST(PatternTest, DetectCycleFindsLoop) {
  EngineFixture f;
  // Money loop: 1 -> 2 -> 3 -> 1, plus a distractor branch.
  ASSERT_TRUE(f.db->AddEdge(1, 1, 2, "", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(2, 1, 3, "", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(3, 1, 1, "", 1).ok());
  ASSERT_TRUE(f.db->AddEdge(2, 1, 9, "", 1).ok());
  CycleOptions opts;
  opts.type = 1;
  opts.max_length = 4;
  EXPECT_TRUE(DetectCycle(f.db.get(), 1, opts).value());
  EXPECT_FALSE(DetectCycle(f.db.get(), 9, opts).value());
}

TEST(PatternTest, CycleLengthBoundRespected) {
  EngineFixture f;
  // 5-cycle.
  for (VertexId v = 0; v < 5; ++v) {
    ASSERT_TRUE(f.db->AddEdge(v, 1, (v + 1) % 5, "", 1).ok());
  }
  CycleOptions opts;
  opts.type = 1;
  opts.max_length = 4;
  EXPECT_FALSE(DetectCycle(f.db.get(), 0, opts).value());
  opts.max_length = 5;
  EXPECT_TRUE(DetectCycle(f.db.get(), 0, opts).value());
}

}  // namespace
}  // namespace bg3::graph

#include "graph/algorithms.h"

namespace bg3::graph {
namespace {

struct AlgoFixture {
  AlgoFixture() {
    store = std::make_unique<cloud::CloudStore>();
    core::GraphDBOptions opts;
    db = std::make_unique<core::GraphDB>(store.get(), opts);
  }
  void Edge(VertexId s, VertexId d) {
    ASSERT_TRUE(db->AddEdge(s, 1, d, "", 1).ok());
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<core::GraphDB> db;
};

TEST(AlgorithmsTest, CommonNeighborsAndJaccard) {
  AlgoFixture f;
  // N(1)={10,11,12}, N(2)={11,12,13,14} -> common 2, union 5.
  for (VertexId d : {10, 11, 12}) f.Edge(1, d);
  for (VertexId d : {11, 12, 13, 14}) f.Edge(2, d);
  SimilarityOptions opts;
  opts.type = 1;
  EXPECT_EQ(CommonNeighbors(f.db.get(), 1, 2, opts).value(), 2u);
  EXPECT_NEAR(JaccardSimilarity(f.db.get(), 1, 2, opts).value(), 2.0 / 5.0,
              1e-9);
}

TEST(AlgorithmsTest, JaccardOfDisconnectedVerticesIsZero) {
  AlgoFixture f;
  f.Edge(1, 10);
  SimilarityOptions opts;
  opts.type = 1;
  EXPECT_EQ(JaccardSimilarity(f.db.get(), 1, 2, opts).value(), 0.0);
  EXPECT_EQ(JaccardSimilarity(f.db.get(), 5, 6, opts).value(), 0.0);
}

TEST(AlgorithmsTest, PersonalizedPageRankMassAndLocality) {
  AlgoFixture f;
  // Two communities bridged by one edge; PPR from 1 should concentrate in
  // community A.
  for (VertexId a : {1, 2, 3}) {
    for (VertexId b : {1, 2, 3}) {
      if (a != b) f.Edge(a, b);
    }
  }
  for (VertexId a : {10, 11, 12}) {
    for (VertexId b : {10, 11, 12}) {
      if (a != b) f.Edge(a, b);
    }
  }
  f.Edge(3, 10);  // bridge
  PersonalizedPageRankOptions opts;
  opts.type = 1;
  opts.epsilon = 1e-6;
  auto scores = PersonalizedPageRank(f.db.get(), 1, opts);
  ASSERT_TRUE(scores.ok());
  double total = 0;
  for (const auto& [v, s] : scores.value()) {
    EXPECT_GE(s, 0.0);
    total += s;
  }
  EXPECT_LE(total, 1.0 + 1e-6);      // push never creates mass
  EXPECT_GT(total, 0.8);             // and converges close to 1
  EXPECT_GT(scores.value()[2], scores.value()[11]);  // locality
}

TEST(AlgorithmsTest, PageRankValidatesParameters) {
  AlgoFixture f;
  PersonalizedPageRankOptions opts;
  opts.alpha = 1.5;
  EXPECT_TRUE(PersonalizedPageRank(f.db.get(), 1, opts).status()
                  .IsInvalidArgument());
  opts.alpha = 0.15;
  opts.epsilon = 0;
  EXPECT_TRUE(PersonalizedPageRank(f.db.get(), 1, opts).status()
                  .IsInvalidArgument());
}

TEST(AlgorithmsTest, RecommendExcludesSelfAndDirectNeighbors) {
  AlgoFixture f;
  // 1 -> 2 -> {3,4}; 3,4 are second-order candidates.
  f.Edge(1, 2);
  f.Edge(2, 3);
  f.Edge(2, 4);
  f.Edge(3, 1);
  PersonalizedPageRankOptions opts;
  opts.type = 1;
  opts.epsilon = 1e-6;
  auto recs = RecommendByPageRank(f.db.get(), 1, 10, opts);
  ASSERT_TRUE(recs.ok());
  for (const auto& [v, score] : recs.value()) {
    EXPECT_NE(v, 1u);  // not self
    EXPECT_NE(v, 2u);  // not a direct neighbor
    EXPECT_GT(score, 0.0);
  }
  ASSERT_FALSE(recs.value().empty());
  EXPECT_TRUE(recs.value()[0].first == 3 || recs.value()[0].first == 4);
}

TEST(AlgorithmsTest, LocalTriangleCount) {
  AlgoFixture f;
  // Directed triangles through 1: 1->2->3 with 1->3 (and 1->3->2 missing
  // the 3->2 edge unless added).
  f.Edge(1, 2);
  f.Edge(2, 3);
  f.Edge(1, 3);
  TriangleOptions opts;
  opts.type = 1;
  EXPECT_EQ(LocalTriangleCount(f.db.get(), 1, opts).value(), 1u);
  f.Edge(3, 2);  // now 1->3->2 closes too
  EXPECT_EQ(LocalTriangleCount(f.db.get(), 1, opts).value(), 2u);
  EXPECT_EQ(LocalTriangleCount(f.db.get(), 9, opts).value(), 0u);
}

}  // namespace
}  // namespace bg3::graph

#include "graph/subgraph.h"

namespace bg3::graph {
namespace {

struct SubgraphFixture {
  SubgraphFixture() {
    store = std::make_unique<cloud::CloudStore>();
    core::GraphDBOptions opts;
    db = std::make_unique<core::GraphDB>(store.get(), opts);
  }
  void Edge(VertexId s, VertexId d) {
    ASSERT_TRUE(db->AddEdge(s, 1, d, "", 1).ok());
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<core::GraphDB> db;
};

TEST(SubgraphTest, ValidateRejectsBadPatterns) {
  SubgraphPattern empty;
  EXPECT_TRUE(ValidatePattern(empty).IsInvalidArgument());

  SubgraphPattern out_of_range;
  out_of_range.vertex_count = 2;
  out_of_range.edges = {PatternEdge{0, 5, 1}};
  EXPECT_TRUE(ValidatePattern(out_of_range).IsInvalidArgument());

  SubgraphPattern reverse_only;  // 1 -> 0 needs an in-neighbor index
  reverse_only.vertex_count = 2;
  reverse_only.edges = {PatternEdge{1, 0, 1}};
  EXPECT_TRUE(ValidatePattern(reverse_only).IsInvalidArgument());

  EXPECT_TRUE(ValidatePattern(CyclePattern(3, 1)).ok());
  EXPECT_TRUE(ValidatePattern(DiamondPattern(1)).ok());
}

TEST(SubgraphTest, TrianglePatternMatchesCycle) {
  SubgraphFixture f;
  f.Edge(1, 2);
  f.Edge(2, 3);
  f.Edge(3, 1);
  f.Edge(2, 9);  // distractor
  auto matches = MatchSubgraph(f.db.get(), 1, CyclePattern(3, 1));
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches.value().size(), 1u);
  EXPECT_EQ(matches.value()[0], (SubgraphMatch{1, 2, 3}));
  // No triangle through 9.
  EXPECT_TRUE(MatchSubgraph(f.db.get(), 9, CyclePattern(3, 1)).value().empty());
}

TEST(SubgraphTest, DiamondPatternMatchesSplitRejoin) {
  SubgraphFixture f;
  // 10 splits to {11, 12}, both pay into 13; decoy path via 14 only half.
  f.Edge(10, 11);
  f.Edge(10, 12);
  f.Edge(11, 13);
  f.Edge(12, 13);
  f.Edge(10, 14);
  auto matches = MatchSubgraph(f.db.get(), 10, DiamondPattern(1));
  ASSERT_TRUE(matches.ok());
  // Two matches: (11,12) and (12,11) as the two intermediaries.
  ASSERT_EQ(matches.value().size(), 2u);
  for (const auto& m : matches.value()) {
    EXPECT_EQ(m[0], 10u);
    EXPECT_EQ(m[3], 13u);
    EXPECT_NE(m[1], m[2]);
  }
}

TEST(SubgraphTest, InjectivityDistinguishesHomomorphism) {
  SubgraphFixture f;
  // 1 -> 2 -> 1: the 4-cycle 1,2,1,2 exists only homomorphically.
  f.Edge(1, 2);
  f.Edge(2, 1);
  SubgraphPattern iso = CyclePattern(4, 1);
  EXPECT_TRUE(MatchSubgraph(f.db.get(), 1, iso).value().empty());
  SubgraphPattern homo = CyclePattern(4, 1);
  homo.injective = false;
  EXPECT_FALSE(MatchSubgraph(f.db.get(), 1, homo).value().empty());
}

TEST(SubgraphTest, MaxMatchesBoundsWork) {
  SubgraphFixture f;
  for (VertexId a = 100; a < 110; ++a) {
    f.Edge(1, a);
    f.Edge(a, 1);  // many 2-cycles through 1
  }
  SubgraphPattern p = CyclePattern(2, 1);
  p.max_matches = 4;
  auto matches = MatchSubgraph(f.db.get(), 1, p);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().size(), 4u);
}

TEST(SubgraphTest, PathPatternViaGenericMatcher) {
  SubgraphFixture f;
  f.Edge(1, 2);
  f.Edge(2, 3);
  f.Edge(3, 4);
  SubgraphPattern path;
  path.vertex_count = 4;
  path.edges = {PatternEdge{0, 1, 1}, PatternEdge{1, 2, 1},
                PatternEdge{2, 3, 1}};
  auto matches = MatchSubgraph(f.db.get(), 1, path);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches.value().size(), 1u);
  EXPECT_EQ(matches.value()[0], (SubgraphMatch{1, 2, 3, 4}));
}

}  // namespace
}  // namespace bg3::graph
