#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/cloud_store.h"
#include "replication/channel.h"
#include "replication/forwarding.h"
#include "replication/page_image.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"

namespace bg3::replication {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

struct ReplFixture {
  explicit ReplFixture(size_t flush_group_pages = 4,
                       size_t max_leaf_entries = 32,
                       size_t ro_cache_pages = 1024) {
    store = std::make_unique<cloud::CloudStore>();
    RwNodeOptions rw_opts;
    rw_opts.tree.tree_id = 1;
    rw_opts.tree.max_leaf_entries = max_leaf_entries;
    rw_opts.tree.base_stream = store->CreateStream("base");
    rw_opts.tree.delta_stream = store->CreateStream("delta");
    wal_stream = store->CreateStream("wal");
    rw_opts.wal.stream = wal_stream;
    rw_opts.flush_group_pages = flush_group_pages;
    rw = std::make_unique<RwNode>(store.get(), rw_opts);

    RoNodeOptions ro_opts;
    ro_opts.wal_stream = rw_opts.wal.stream;
    ro_opts.cache_capacity_pages = ro_cache_pages;
    ro = std::make_unique<RoNode>(store.get(), ro_opts);
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<RwNode> rw;
  std::unique_ptr<RoNode> ro;
  cloud::StreamId wal_stream = 0;
};

// --- page image meta -------------------------------------------------------------

TEST(PageImageMetaTest, RoundTrip) {
  PageImageMeta meta;
  meta.flushed_lsn = 77;
  meta.base_ptr = {1, 5, 100, 200};
  meta.delta_ptrs = {{2, 6, 0, 50}, {2, 7, 50, 60}};
  const std::string buf = meta.Encode();
  PageImageMeta out;
  ASSERT_TRUE(PageImageMeta::Decode(Slice(buf), &out).ok());
  EXPECT_EQ(out.flushed_lsn, 77u);
  EXPECT_EQ(out.base_ptr, meta.base_ptr);
  ASSERT_EQ(out.delta_ptrs.size(), 2u);
  EXPECT_EQ(out.delta_ptrs[1], meta.delta_ptrs[1]);
}

TEST(PageImageMetaTest, KeyIsPerTreeAndPage) {
  EXPECT_NE(PageImageKey(1, 2), PageImageKey(2, 1));
  EXPECT_EQ(PageImageKey(1, 2), PageImageKey(1, 2));
}

// --- lossy channel -----------------------------------------------------------------

TEST(LossyChannelTest, LosslessByDefault) {
  LossyChannel ch(ChannelOptions{});
  for (int i = 0; i < 100; ++i) ch.Send("m" + std::to_string(i));
  auto out = ch.Drain();
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(out[99], "m99");
  EXPECT_TRUE(ch.Drain().empty());
}

TEST(LossyChannelTest, DropsApproximatelyAtConfiguredRate) {
  ChannelOptions opts;
  opts.loss_rate = 0.05;
  opts.loss_burst = 2;
  opts.seed = 42;
  LossyChannel ch(opts);
  for (int i = 0; i < 10000; ++i) ch.Send("m");
  const double delivered = static_cast<double>(ch.Drain().size());
  // Burst 2 at p=0.05 per send: expected delivered fraction ~ 0.90.
  EXPECT_NEAR(delivered / 10000.0, 0.90, 0.03);
}

// --- forwarding baseline (eventual consistency) -------------------------------------

TEST(ForwardingTest, LosslessChannelReachesFullRecall) {
  LossyChannel ch(ChannelOptions{});
  ForwardingRwNode rw({&ch});
  ForwardingRoNode ro(&ch);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(rw.Put(Key(i), "v" + std::to_string(i)).ok());
  }
  ro.Drain();
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(ro.Get(Key(i)).value(), "v" + std::to_string(i));
  }
}

TEST(ForwardingTest, PacketLossLosesWrites) {
  ChannelOptions opts;
  opts.loss_rate = 0.05;
  LossyChannel ch(opts);
  ForwardingRwNode rw({&ch});
  ForwardingRoNode ro(&ch);
  const int n = 2000;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(rw.Put(Key(i), "v").ok());
  ro.Drain();
  int recalled = 0;
  for (int i = 0; i < n; ++i) recalled += ro.Get(Key(i)).ok() ? 1 : 0;
  EXPECT_LT(recalled, n);       // eventual consistency lost data...
  EXPECT_GT(recalled, n * 3 / 4);  // ...but most arrived.
  // The RW node itself always has everything.
  for (int i = 0; i < n; ++i) EXPECT_TRUE(rw.Get(Key(i)).ok());
}

TEST(ForwardingTest, DeletesForwardToo) {
  LossyChannel ch(ChannelOptions{});
  ForwardingRwNode rw({&ch});
  ForwardingRoNode ro(&ch);
  ASSERT_TRUE(rw.Put("k", "v").ok());
  ASSERT_TRUE(rw.Delete("k").ok());
  ro.Drain();
  EXPECT_TRUE(ro.Get("k").status().IsNotFound());
}

// --- WAL-based sync (strong consistency) ---------------------------------------------

TEST(RwRoSyncTest, RoSeesWriteImmediately) {
  ReplFixture f;
  ASSERT_TRUE(f.rw->Put("key", "value").ok());
  EXPECT_EQ(f.ro->Get(1, "key").value(), "value");
}

TEST(RwRoSyncTest, RoSeesEveryWriteBeforeAnyFlush) {
  ReplFixture f(/*flush_group_pages=*/1'000'000);  // no group flush at all
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(f.ro->Get(1, Key(i)).value(), "v" + std::to_string(i)) << i;
  }
}

TEST(RwRoSyncTest, RoSeesWritesAfterGroupFlushAndCheckpoint) {
  ReplFixture f(/*flush_group_pages=*/2);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(f.rw->FlushGroup().ok());
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(f.ro->Get(1, Key(i)).value(), "v" + std::to_string(i)) << i;
  }
  // Checkpoints let the RO discard replay log entries.
  EXPECT_GT(f.rw->last_checkpoint_lsn(), 0u);
  BG3_IGNORE_STATUS(f.ro->PollWal());
  EXPECT_EQ(f.ro->PendingRecordCount(), 0u);
}

TEST(RwRoSyncTest, UpdatesAndDeletesReplicate) {
  ReplFixture f;
  ASSERT_TRUE(f.rw->Put("k", "v1").ok());
  EXPECT_EQ(f.ro->Get(1, "k").value(), "v1");
  ASSERT_TRUE(f.rw->Put("k", "v2").ok());
  EXPECT_EQ(f.ro->Get(1, "k").value(), "v2");
  ASSERT_TRUE(f.rw->Delete("k").ok());
  EXPECT_TRUE(f.ro->Get(1, "k").status().IsNotFound());
}

TEST(RwRoSyncTest, ConsistentAcrossSplits) {
  // The Fig. 6 scenario: a split must never make the RO lose sight of keys
  // (the inconsistency BG3's synchronization is designed to prevent).
  ReplFixture f(/*flush_group_pages=*/8, /*max_leaf_entries=*/8);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v" + std::to_string(i)).ok());
    if (i % 7 == 0) {
      EXPECT_EQ(f.ro->Get(1, Key(i)).value(), "v" + std::to_string(i));
    }
  }
  EXPECT_GT(f.rw->tree()->stats().splits.Get(), 0u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(f.ro->Get(1, Key(i)).value(), "v" + std::to_string(i)) << i;
  }
}

TEST(RwRoSyncTest, NewPageCreatedInMemoryOnRo) {
  // A page born from a split and never flushed must be reconstructible on
  // the RO purely from the WAL ("the RO node directly creates it in
  // memory", Fig. 7 step (6)).
  ReplFixture f(/*flush_group_pages=*/1'000'000, /*max_leaf_entries=*/4);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "x").ok());
  }
  EXPECT_GT(f.rw->tree()->stats().splits.Get(), 0u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(f.ro->Get(1, Key(i)).ok()) << i;
  }
}

TEST(RwRoSyncTest, CacheEvictionForcesRebuildFromOldMapping) {
  ReplFixture f(/*flush_group_pages=*/4, /*max_leaf_entries=*/8,
                /*ro_cache_pages=*/2);  // tiny RO cache
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  // Reads sweep the key space repeatedly; with 2 cache pages every read is
  // effectively a miss that must rebuild via manifest images + replay.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 200; i += 17) {
      EXPECT_EQ(f.ro->Get(1, Key(i)).value(), "v" + std::to_string(i));
    }
  }
  EXPECT_GT(f.ro->stats().cache_misses.Get(), 10u);
}

TEST(RwRoSyncTest, ScanOnRoMatchesRw) {
  ReplFixture f(/*flush_group_pages=*/4, /*max_leaf_entries=*/8);
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), std::to_string(i)).ok());
  }
  std::vector<bwtree::Entry> ro_out;
  ASSERT_TRUE(f.ro->Scan(1, Key(10), Key(50), 1000, &ro_out).ok());
  ASSERT_EQ(ro_out.size(), 40u);
  EXPECT_EQ(ro_out.front().key, Key(10));
  EXPECT_EQ(ro_out.back().key, Key(49));
}

TEST(RwRoSyncTest, MultipleRoNodesStayConsistent) {
  ReplFixture f;
  RoNodeOptions opts;
  opts.wal_stream = 2;  // streams: base=0, delta=1, wal=2
  RoNode ro2(f.store.get(), opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v").ok());
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(f.ro->Get(1, Key(i)).ok());
    EXPECT_TRUE(ro2.Get(1, Key(i)).ok());
  }
}

TEST(RwRoSyncTest, PendingLogCompactionPreservesCorrectness) {
  ReplFixture f(/*flush_group_pages=*/1'000'000);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(f.rw->Put(Key(i), "r" + std::to_string(round)).ok());
    }
  }
  BG3_IGNORE_STATUS(f.ro->PollWal());
  const size_t before = f.ro->PendingRecordCount();
  f.ro->CompactPendingLogs();
  EXPECT_LT(f.ro->PendingRecordCount(), before);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.ro->Get(1, Key(i)).value(), "r49");
  }
}

TEST(RwRoSyncTest, SyncLatencyRecorded) {
  ReplFixture f;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "v").ok());
  BG3_IGNORE_STATUS(f.ro->PollWal());
  EXPECT_EQ(f.ro->sync_latency().Count(), 50u);
  EXPECT_GT(f.ro->sync_latency().Mean(), 0.0);
}

TEST(RwRoSyncTest, InterleavedWritesAndRoReadsUnderConcurrency) {
  ReplFixture f(/*flush_group_pages=*/8, /*max_leaf_entries=*/16);
  std::thread writer([&] {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(f.rw->Put(Key(i), std::to_string(i)).ok());
    }
  });
  std::thread reader([&] {
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 1000; i += 31) {
        auto v = f.ro->Get(1, Key(i));
        if (v.ok()) {
          EXPECT_EQ(v.value(), std::to_string(i));
        }
      }
    }
  });
  writer.join();
  reader.join();
  // Post-hoc: RO reflects all writes.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(f.ro->Get(1, Key(i)).value(), std::to_string(i)) << i;
  }
}

}  // namespace
}  // namespace bg3::replication

namespace bg3::replication {
namespace {

// Regression: a fresh RO must drain the *entire* WAL even when it holds
// more batches than one reader poll returns (the bug behind an 0.88 recall
// in the Fig. 12 reproduction).
TEST(RwRoSyncTest, FreshRoDrainsThousandsOfWalBatches) {
  ReplFixture f(/*flush_group_pages=*/1'000'000);  // no checkpoints at all
  const int n = 3000;  // > the reader's 1024-batch poll window
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v").ok());
  }
  RoNodeOptions opts;
  opts.wal_stream = 2;
  RoNode fresh(f.store.get(), opts);
  int visible = 0;
  for (int i = 0; i < n; ++i) visible += fresh.Get(1, Key(i)).ok() ? 1 : 0;
  EXPECT_EQ(visible, n);
}

// Regression: pending-log compaction must not re-trigger on every append
// once past the threshold (unique keys cannot shrink), and must preserve
// correctness for interleaved updates.
TEST(RwRoSyncTest, PendingCompactionWatermarkAndCorrectness) {
  ReplFixture f(/*flush_group_pages=*/1'000'000);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(f.rw->Put(Key(i), "r" + std::to_string(round)).ok());
    }
  }
  BG3_IGNORE_STATUS(f.ro->PollWal());
  EXPECT_EQ(f.ro->PendingRecordCount(), 1600u);  // nothing checkpointed
  f.ro->CompactPendingLogs();
  // Merging keeps at most one record per key per page log (a key may appear
  // in a few page logs when its leaf split between updates).
  EXPECT_LT(f.ro->PendingRecordCount(), 1000u);
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(f.ro->Get(1, Key(i)).value(), "r3");
  }
  // Appending more records after a merge must not re-trigger compaction on
  // every single append (watermark regression): correctness still holds.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "r4").ok());
  }
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(f.ro->Get(1, Key(i)).value(), "r4");
  }
}

// Mutation-count pressure must checkpoint even when few pages exist.
TEST(RwRoSyncTest, MutationPressureTriggersCheckpoints) {
  ReplFixture f(/*flush_group_pages=*/1'000'000);  // page pressure never fires
  for (int i = 0; i < 20'000; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i % 64), "v" + std::to_string(i)).ok());
  }
  EXPECT_GT(f.rw->last_checkpoint_lsn(), 0u);
  BG3_IGNORE_STATUS(f.ro->PollWal());
  EXPECT_LT(f.ro->PendingRecordCount(), 10'000u);
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(f.ro->Get(1, Key(i)).ok());
}

}  // namespace
}  // namespace bg3::replication

namespace bg3::replication {
namespace {

// Regression: a checkpoint must not discard replay records a *cached* RO
// page has not applied yet — the cached copy never re-reads the manifest,
// so those updates would be lost on that node forever.
TEST(RwRoSyncTest, CheckpointDoesNotStalenessCachedPages) {
  ReplFixture f(/*flush_group_pages=*/1'000'000, /*max_leaf_entries=*/1024);
  ASSERT_TRUE(f.rw->Put(Key(0), "v").ok());
  // Cache the (single) page on the RO.
  ASSERT_TRUE(f.ro->Get(1, Key(0)).ok());
  // New writes to the same page, then a checkpoint that discards them.
  for (int i = 1; i < 50; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "v").ok());
  ASSERT_TRUE(f.rw->Put(Key(0), "updated").ok());
  ASSERT_TRUE(f.rw->FlushGroup().ok());
  // The cached page must reflect everything the checkpoint covered.
  EXPECT_EQ(f.ro->Get(1, Key(0)).value(), "updated");
  for (int i = 1; i < 50; ++i) {
    EXPECT_TRUE(f.ro->Get(1, Key(i)).ok()) << i;
  }
}

// --- shared-latch fast reads (min_poll_gap_us > 0) ---------------------------

struct CadenceFixture : ReplFixture {
  CadenceFixture() : ReplFixture() {
    RoNodeOptions opts;
    opts.wal_stream = wal_stream;
    // Far longer than any test run but well below wall-clock-since-epoch,
    // so the very first read still polls (0 -> now exceeds the gap) and
    // every later warm read is eligible for the shared-latch path.
    opts.min_poll_gap_us = 1'000'000'000;  // ~16 minutes
    cadence_ro = std::make_unique<RoNode>(store.get(), opts);
  }
  std::unique_ptr<RoNode> cadence_ro;
};

TEST(RoFastReadTest, WarmReadsTakeSharedPathAndStayCorrect) {
  CadenceFixture f;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  // First read polls + fills the cache under the exclusive latch.
  ASSERT_EQ(f.cadence_ro->Get(1, Key(0)).value(), "v0");
  const uint64_t fast_before = f.cadence_ro->stats().fast_reads.Get();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(f.cadence_ro->Get(1, Key(i)).value(), "v" + std::to_string(i));
  }
  // Misses on uncached keys of a cached page are authoritative too.
  EXPECT_TRUE(f.cadence_ro->Get(1, "nope").status().IsNotFound());
  EXPECT_GT(f.cadence_ro->stats().fast_reads.Get(), fast_before);
}

TEST(RoFastReadTest, PendingReplayDisqualifiesFastPath) {
  CadenceFixture f;
  ASSERT_TRUE(f.rw->Put(Key(0), "old").ok());
  ASSERT_EQ(f.cadence_ro->Get(1, Key(0)).value(), "old");  // warm the cache
  ASSERT_TRUE(f.rw->Put(Key(0), "new").ok());
  // An explicit poll pulls the record into the pending log; the next read
  // must notice the unreplayed tail and take the exclusive path.
  ASSERT_TRUE(f.cadence_ro->PollWal().ok());
  EXPECT_EQ(f.cadence_ro->Get(1, Key(0)).value(), "new");
}

TEST(RoFastReadTest, ConcurrentWarmReadersAgree) {
  CadenceFixture f;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v").ok());
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(f.cadence_ro->Get(1, Key(i)).ok());  // warm every page
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&f, &failures, t] {
      for (int i = 0; i < 500; ++i) {
        auto v = f.cadence_ro->Get(1, Key((i + t) % 30));
        if (!v.ok() || v.value() != "v") failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(f.cadence_ro->stats().fast_reads.Get(), 0u);
}

}  // namespace
}  // namespace bg3::replication
