// Property test for WAL torn-tail recovery: whatever batch sizes, record
// shapes and tear points a seeded RNG produces, a reader recovers exactly
// the committed prefix — never a corrupt record, never a reordering, and
// (with writer retries) never a duplicate. Failing runs print their seed;
// BG3_TEST_SEED=<seed> replays them.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cloud/cloud_store.h"
#include "cloud/fault_injector.h"
#include "common/random.h"
#include "test_seed.h"
#include "wal/reader.h"
#include "wal/record.h"
#include "wal/writer.h"

namespace bg3::wal {
namespace {

using ExpectedRecord = std::tuple<bwtree::Lsn, std::string, std::string>;

std::string RandomBytes(Random& rng, size_t min_len, size_t max_len) {
  const size_t len = min_len + rng.Uniform(max_len - min_len + 1);
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>('a' + rng.Uniform(26));
  return out;
}

WalRecord Mutation(bwtree::Lsn lsn, std::string key, std::string value) {
  WalRecord r;
  r.type = WalRecord::Type::kMutation;
  r.tree_id = 1;
  r.page_id = lsn % 13;
  r.lsn = lsn;
  r.entry = {bwtree::DeltaOp::kUpsert, std::move(key), std::move(value)};
  return r;
}

void ExpectPrefix(const std::vector<WalRecord>& got,
                  const std::vector<ExpectedRecord>& expected, size_t count,
                  uint64_t seed, int trial) {
  ASSERT_EQ(got.size(), count) << "seed=" << seed << " trial=" << trial;
  for (size_t i = 0; i < count; ++i) {
    const auto& [lsn, key, value] = expected[i];
    EXPECT_EQ(got[i].lsn, lsn) << "seed=" << seed << " trial=" << trial;
    EXPECT_EQ(got[i].entry.key, key) << "seed=" << seed << " trial=" << trial;
    EXPECT_EQ(got[i].entry.value, value)
        << "seed=" << seed << " trial=" << trial;
  }
}

// A tear at the stream tail (medium damage after the fact) erases exactly
// the last batch; everything before it survives byte-for-byte.
TEST(WalPropertyTest, TornTailYieldsExactlyCommittedPrefix) {
  const uint64_t seed =
      test::AnnouncedSeed("WalPropertyTest.TornTail", 0xC0FFEE);
  Random rng(seed);
  for (int trial = 0; trial < 50; ++trial) {
    cloud::CloudStore store;
    WalWriterOptions w;
    w.stream = store.CreateStream("wal");
    w.group_size = 1 + rng.Uniform(4);  // 1..4 records per batch.
    WalWriter writer(&store, w);

    const size_t n = 1 + rng.Uniform(40);
    std::vector<ExpectedRecord> expected;
    for (size_t i = 0; i < n; ++i) {
      std::string key = RandomBytes(rng, 1, 16);
      std::string value = RandomBytes(rng, 0, 64);
      expected.emplace_back(i + 1, key, value);
      ASSERT_TRUE(writer.Append(Mutation(i + 1, key, value)).ok());
    }
    ASSERT_TRUE(writer.Flush().ok());

    // Tear the tail: damage one byte of the last appended batch. The last
    // batch holds the final n % group_size records (a full group when the
    // count divides evenly).
    const size_t last_batch =
        n % w.group_size == 0 ? w.group_size : n % w.group_size;
    const size_t committed = n - last_batch;
    ASSERT_TRUE(store.CorruptRecordForTesting(
        writer.last_append_ptr(), static_cast<uint32_t>(rng.Uniform(8))));

    WalReader reader(&store, w.stream);
    auto records = reader.Poll();
    ASSERT_TRUE(records.ok()) << "seed=" << seed << " trial=" << trial << " "
                              << records.status().ToString();
    ExpectPrefix(records.value(), expected, committed, seed, trial);

    // The torn batch never materializes on a later poll either.
    auto again = reader.Poll();
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again.value().empty())
        << "seed=" << seed << " trial=" << trial;
  }
}

// Injected torn appends (a tear the writer *observes*) are repaired by the
// writer's retry: the reader sees every record exactly once, in order.
TEST(WalPropertyTest, InjectedTearsWithRetryLoseAndDuplicateNothing) {
  const uint64_t seed =
      test::AnnouncedSeed("WalPropertyTest.InjectedTears", 0x7EA55);
  Random rng(seed);
  for (int trial = 0; trial < 20; ++trial) {
    cloud::FaultInjectorOptions fopts;
    fopts.seed = rng.Next();
    fopts.torn_append_p = 0.15;
    fopts.transient_error_p = 0.05;
    cloud::FaultInjector fi(fopts);
    cloud::CloudStore store;
    store.SetFaultInjector(&fi);

    WalWriterOptions w;
    w.stream = store.CreateStream("wal");
    w.group_size = 1 + rng.Uniform(4);
    w.retry.max_attempts = 6;  // 0.15^6: exhaustion is effectively never.
    WalWriter writer(&store, w);

    const size_t n = 30 + rng.Uniform(40);
    std::vector<ExpectedRecord> expected;
    for (size_t i = 0; i < n; ++i) {
      std::string key = RandomBytes(rng, 1, 16);
      std::string value = RandomBytes(rng, 0, 64);
      expected.emplace_back(i + 1, key, value);
      ASSERT_TRUE(writer.Append(Mutation(i + 1, key, value)).ok())
          << "seed=" << seed << " trial=" << trial << " " << fi.ToString();
    }
    ASSERT_TRUE(writer.Flush().ok());

    // The property under test is what landed in the log: read it back over
    // a healthy substrate (transient faults also hit the tail op).
    store.SetFaultInjector(nullptr);
    WalReader reader(&store, w.stream);
    auto records = reader.Poll();
    ASSERT_TRUE(records.ok()) << "seed=" << seed << " trial=" << trial;
    ExpectPrefix(records.value(), expected, n, seed, trial);
  }
}

}  // namespace
}  // namespace bg3::wal
