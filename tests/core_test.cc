#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "cloud/cloud_store.h"
#include "core/graph_db.h"

namespace bg3::core {
namespace {

struct DbFixture {
  explicit DbFixture(GraphDBOptions opts = {}, size_t extent_capacity = 1 << 16) {
    cloud::CloudStoreOptions copts;
    copts.extent_capacity = extent_capacity;
    store = std::make_unique<cloud::CloudStore>(copts);
    if (opts.time_source == nullptr) opts.time_source = &clock;
    db = std::make_unique<GraphDB>(store.get(), opts);
  }
  cloud::ManualTimeSource clock;
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<GraphDB> db;
};

TEST(OptionsTest, ValidateCatchesBadRanges) {
  GraphDBOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
  opts.gc_min_fragmentation = 2.0;
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());
  opts = GraphDBOptions{};
  opts.forest.owner_shards = 0;
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());
}

TEST(OptionsTest, PolicyFactoryCoversAllKinds) {
  EXPECT_EQ(MakeGcPolicy(GcPolicyKind::kNone, 0.1), nullptr);
  EXPECT_EQ(MakeGcPolicy(GcPolicyKind::kFifo, 0.1)->name(), "fifo");
  EXPECT_EQ(MakeGcPolicy(GcPolicyKind::kDirtyRatio, 0.1)->name(),
            "dirty-ratio");
  EXPECT_EQ(MakeGcPolicy(GcPolicyKind::kWorkloadAware, 0.1)->name(),
            "workload-aware");
}

TEST(GraphDBTest, VertexRoundTrip) {
  DbFixture f;
  ASSERT_TRUE(f.db->AddVertex(42, "user-properties").ok());
  EXPECT_EQ(f.db->GetVertex(42).value(), "user-properties");
  EXPECT_TRUE(f.db->GetVertex(43).status().IsNotFound());
}

TEST(GraphDBTest, EdgeRoundTrip) {
  DbFixture f;
  ASSERT_TRUE(f.db->AddEdge(1, 2, 3, "liked-at-noon", 100).ok());
  EXPECT_EQ(f.db->GetEdge(1, 2, 3).value(), "liked-at-noon");
  EXPECT_TRUE(f.db->GetEdge(1, 2, 4).status().IsNotFound());
  EXPECT_TRUE(f.db->GetEdge(1, 3, 3).status().IsNotFound());  // other type
}

TEST(GraphDBTest, DeleteEdge) {
  DbFixture f;
  ASSERT_TRUE(f.db->AddEdge(1, 1, 2, "p", 1).ok());
  ASSERT_TRUE(f.db->DeleteEdge(1, 1, 2).ok());
  EXPECT_TRUE(f.db->GetEdge(1, 1, 2).status().IsNotFound());
}

TEST(GraphDBTest, NeighborsSortedByDst) {
  DbFixture f;
  for (graph::VertexId d : {30, 10, 20}) {
    ASSERT_TRUE(f.db->AddEdge(5, 1, d, "p" + std::to_string(d), 1).ok());
  }
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(5, 1, 100, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].dst, 10u);
  EXPECT_EQ(out[1].dst, 20u);
  EXPECT_EQ(out[2].dst, 30u);
  EXPECT_EQ(out[2].properties, "p30");
}

TEST(GraphDBTest, NeighborsLimitApplies) {
  DbFixture f;
  for (graph::VertexId d = 0; d < 50; ++d) {
    ASSERT_TRUE(f.db->AddEdge(5, 1, d + 100, "", 1).ok());
  }
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(5, 1, 10, &out).ok());
  EXPECT_EQ(out.size(), 10u);
}

TEST(GraphDBTest, SuperVertexSplitsOutIntoDedicatedTree) {
  GraphDBOptions opts;
  opts.forest.split_out_threshold = 64;
  DbFixture f(opts);
  for (graph::VertexId d = 0; d < 200; ++d) {
    ASSERT_TRUE(f.db->AddEdge(7, 1, d, "", 1).ok());
  }
  EXPECT_GE(f.db->forest()->DedicatedTreeCount(), 1u);
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(7, 1, 1000, &out).ok());
  EXPECT_EQ(out.size(), 200u);
}

TEST(GraphDBTest, TtlExpiresEdgesOnRead) {
  GraphDBOptions opts;
  opts.edge_ttl_us = 1000;
  DbFixture f(opts);
  f.clock.SetUs(100);
  ASSERT_TRUE(f.db->AddEdge(1, 1, 2, "old", 0).ok());  // stamped at 100
  f.clock.SetUs(500);
  EXPECT_TRUE(f.db->GetEdge(1, 1, 2).ok());  // still fresh
  f.clock.SetUs(2000);
  EXPECT_TRUE(f.db->GetEdge(1, 1, 2).status().IsNotFound());
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(1, 1, 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(GraphDBTest, GcCycleReclaimsChurnedSpace) {
  GraphDBOptions opts;
  opts.gc_policy = GcPolicyKind::kDirtyRatio;
  opts.gc_target_dead_ratio = 0.01;
  opts.gc_min_fragmentation = 0.01;
  opts.gc_extents_per_cycle = 8;
  opts.forest.tree_options.consolidate_threshold = 4;
  DbFixture f(opts, /*extent_capacity=*/2048);
  for (int round = 0; round < 40; ++round) {
    f.clock.AdvanceUs(1000);
    for (graph::VertexId d = 0; d < 20; ++d) {
      ASSERT_TRUE(
          f.db->AddEdge(1, 1, d, "r" + std::to_string(round), 0).ok());
    }
  }
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(f.db->RunGcCycle().ok());
  const DbStats stats = f.db->Stats();
  EXPECT_GT(stats.extents_freed, 0u);
  // Data survives reclamation.
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(1, 1, 100, &out).ok());
  EXPECT_EQ(out.size(), 20u);
  for (const auto& n : out) EXPECT_EQ(n.properties, "r39");
}

TEST(GraphDBTest, TtlWorkloadExpiresWholeExtentsWithoutMovement) {
  GraphDBOptions opts;
  opts.gc_policy = GcPolicyKind::kWorkloadAware;
  opts.edge_ttl_us = 1'000'000;
  opts.gc_extents_per_cycle = 64;
  DbFixture f(opts, /*extent_capacity=*/4096);
  for (int i = 0; i < 500; ++i) {
    f.clock.AdvanceUs(100);
    ASSERT_TRUE(f.db->AddEdge(i % 50, 1, 1000 + i, std::string(32, 'x'), 0).ok());
  }
  f.clock.AdvanceUs(10'000'000);
  ASSERT_TRUE(f.db->RunGcCycle().ok());
  const DbStats stats = f.db->Stats();
  EXPECT_GT(stats.gc_extents_expired, 0u);
  EXPECT_EQ(stats.gc_moved_bytes, 0u);  // Table 2: TTL -> zero movement
}

TEST(GraphDBTest, StatsSnapshotIsCoherent) {
  DbFixture f;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.db->AddEdge(i % 5, 1, i, "p", 0).ok());
  }
  const DbStats stats = f.db->Stats();
  EXPECT_GT(stats.append_ops, 0u);
  EXPECT_GT(stats.storage_total_bytes, 0u);
  EXPECT_GE(stats.storage_total_bytes, stats.storage_live_bytes);
  EXPECT_GE(stats.tree_count, 1u);
  EXPECT_GT(stats.approx_memory_bytes, 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(GraphDBTest, ConcurrentMixedWorkload) {
  GraphDBOptions opts;
  opts.forest.split_out_threshold = 32;
  DbFixture f(opts);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<graph::Neighbor> out;
      for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE(f.db->AddEdge(t, 1, i, "v", 0).ok());
        if (i % 10 == 0) {
          out.clear();
          ASSERT_TRUE(f.db->GetNeighbors(t, 1, 16, &out).ok());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) {
    std::vector<graph::Neighbor> out;
    ASSERT_TRUE(f.db->GetNeighbors(t, 1, 1000, &out).ok());
    EXPECT_EQ(out.size(), 300u);
  }
}

}  // namespace
}  // namespace bg3::core

namespace bg3::core {
namespace {

TEST(GraphDBTest, BackgroundMaintenanceRunsAndStops) {
  GraphDBOptions opts;
  opts.gc_policy = GcPolicyKind::kDirtyRatio;
  opts.gc_target_dead_ratio = 0.01;
  opts.gc_min_fragmentation = 0.01;
  opts.forest.tree_options.consolidate_threshold = 4;
  DbFixture f(opts, /*extent_capacity=*/2048);
  f.db->StartMaintenance(/*interval_ms=*/5);
  f.db->StartMaintenance(5);  // idempotent
  for (int round = 0; round < 30; ++round) {
    for (graph::VertexId d = 0; d < 20; ++d) {
      ASSERT_TRUE(f.db->AddEdge(1, 1, d, "r" + std::to_string(round), 0).ok());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  f.db->StopMaintenance();
  f.db->StopMaintenance();  // idempotent
  // Data intact; GC actually ran.
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(1, 1, 100, &out).ok());
  EXPECT_EQ(out.size(), 20u);
  EXPECT_GT(f.db->Stats().extents_freed, 0u);
}

}  // namespace
}  // namespace bg3::core

namespace bg3::core {
namespace {

TEST(GraphDBTest, MemoryBudgetEvictsDuringMaintenance) {
  GraphDBOptions opts;
  opts.memory_budget_bytes = 1;  // everything is over budget
  opts.gc_policy = GcPolicyKind::kNone;
  DbFixture f(opts);
  for (graph::VertexId d = 0; d < 2000; ++d) {
    ASSERT_TRUE(f.db->AddEdge(1, 1, d, std::string(64, 'x'), 0).ok());
  }
  const size_t before = f.db->Stats().approx_memory_bytes;
  ASSERT_TRUE(f.db->RunGcCycle().ok());  // maintenance = eviction here
  EXPECT_LT(f.db->Stats().approx_memory_bytes, before / 2);
  // Data remains fully readable (reloaded from flushed images).
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(1, 1, 5000, &out).ok());
  EXPECT_EQ(out.size(), 2000u);
}

}  // namespace
}  // namespace bg3::core
