// GraphEngine API conformance: the same behavioural contract, parameterized
// over every engine implementation (BG3, ByteGraph-over-LSM, the reference
// store). The overall-comparison benches only make sense because all three
// satisfy identical semantics; this suite pins those semantics down.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "bytegraph/bytegraph_db.h"
#include "cloud/cloud_store.h"
#include "core/graph_db.h"
#include "refstore/ref_graph_store.h"

namespace bg3::graph {
namespace {

struct EngineUnderTest {
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<GraphEngine> engine;
};

using EngineFactory = std::function<EngineUnderTest()>;

EngineUnderTest MakeBg3() {
  EngineUnderTest e;
  e.store = std::make_unique<cloud::CloudStore>();
  core::GraphDBOptions opts;
  opts.forest.split_out_threshold = 16;  // exercise split-outs in-suite
  e.engine = std::make_unique<core::GraphDB>(e.store.get(), opts);
  return e;
}

EngineUnderTest MakeByteGraph() {
  EngineUnderTest e;
  e.store = std::make_unique<cloud::CloudStore>();
  bytegraph::ByteGraphOptions opts;
  opts.max_node_edges = 8;  // exercise edge-tree node splits
  opts.lsm.memtable_bytes = 4096;
  e.engine = std::make_unique<bytegraph::ByteGraphDB>(e.store.get(), opts);
  return e;
}

EngineUnderTest MakeRefStore() {
  EngineUnderTest e;
  e.store = std::make_unique<cloud::CloudStore>();
  refstore::RefStoreOptions opts;
  opts.op_cost_iterations = 1;
  e.engine = std::make_unique<refstore::RefGraphStore>(e.store.get(), opts);
  return e;
}

struct ConformanceParam {
  const char* name;
  EngineFactory factory;
};

class EngineConformanceTest : public testing::TestWithParam<ConformanceParam> {
 protected:
  void SetUp() override { eut_ = GetParam().factory(); }
  GraphEngine* db() { return eut_.engine.get(); }
  EngineUnderTest eut_;
};

TEST_P(EngineConformanceTest, VertexContract) {
  EXPECT_TRUE(db()->GetVertex(1).status().IsNotFound());
  ASSERT_TRUE(db()->AddVertex(1, "props-v1").ok());
  EXPECT_EQ(db()->GetVertex(1).value(), "props-v1");
  ASSERT_TRUE(db()->AddVertex(1, "props-v2").ok());  // overwrite
  EXPECT_EQ(db()->GetVertex(1).value(), "props-v2");
}

TEST_P(EngineConformanceTest, EdgeContract) {
  EXPECT_TRUE(db()->GetEdge(1, 1, 2).status().IsNotFound());
  ASSERT_TRUE(db()->AddEdge(1, 1, 2, "e1", 10).ok());
  EXPECT_EQ(db()->GetEdge(1, 1, 2).value(), "e1");
  // Type and direction isolation.
  EXPECT_TRUE(db()->GetEdge(1, 2, 2).status().IsNotFound());
  EXPECT_TRUE(db()->GetEdge(2, 1, 1).status().IsNotFound());
  // Overwrite keeps a single edge.
  ASSERT_TRUE(db()->AddEdge(1, 1, 2, "e2", 11).ok());
  EXPECT_EQ(db()->GetEdge(1, 1, 2).value(), "e2");
  std::vector<Neighbor> out;
  ASSERT_TRUE(db()->GetNeighbors(1, 1, 10, &out).ok());
  EXPECT_EQ(out.size(), 1u);
  // Delete is terminal and idempotent.
  ASSERT_TRUE(db()->DeleteEdge(1, 1, 2).ok());
  EXPECT_TRUE(db()->GetEdge(1, 1, 2).status().IsNotFound());
  ASSERT_TRUE(db()->DeleteEdge(1, 1, 2).ok());
}

TEST_P(EngineConformanceTest, NeighborsSortedAndLimited) {
  for (VertexId d : {50, 10, 40, 20, 30}) {
    ASSERT_TRUE(db()->AddEdge(7, 1, d, "p" + std::to_string(d), 1).ok());
  }
  std::vector<Neighbor> out;
  ASSERT_TRUE(db()->GetNeighbors(7, 1, 100, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1].dst, out[i].dst);
  EXPECT_EQ(out[0].dst, 10u);
  EXPECT_EQ(out[0].properties, "p10");
  out.clear();
  ASSERT_TRUE(db()->GetNeighbors(7, 1, 3, &out).ok());
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out.back().dst, 30u);  // limit keeps the smallest dsts
}

TEST_P(EngineConformanceTest, NeighborsOfUnknownVertexIsEmptyNotError) {
  std::vector<Neighbor> out;
  ASSERT_TRUE(db()->GetNeighbors(999, 1, 10, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(db()->CountNeighbors(999, 1, 10).value(), 0u);
}

TEST_P(EngineConformanceTest, LargeAdjacencyListSurvivesStructureChanges) {
  // Crosses leaf/node split thresholds of every engine configuration.
  for (VertexId d = 0; d < 300; ++d) {
    ASSERT_TRUE(db()->AddEdge(9, 1, d, std::to_string(d), 1).ok());
  }
  std::vector<Neighbor> out;
  ASSERT_TRUE(db()->GetNeighbors(9, 1, 1000, &out).ok());
  ASSERT_EQ(out.size(), 300u);
  for (VertexId d = 0; d < 300; ++d) {
    EXPECT_EQ(out[d].dst, d);
    EXPECT_EQ(out[d].properties, std::to_string(d));
  }
}

TEST_P(EngineConformanceTest, TimestampsRoundTrip) {
  ASSERT_TRUE(db()->AddEdge(1, 1, 2, "p", 123456789).ok());
  std::vector<Neighbor> out;
  ASSERT_TRUE(db()->GetNeighbors(1, 1, 10, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].created_us, 123456789u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineConformanceTest,
    testing::Values(ConformanceParam{"BG3", MakeBg3},
                    ConformanceParam{"ByteGraph", MakeByteGraph},
                    ConformanceParam{"RefStore", MakeRefStore}),
    [](const testing::TestParamInfo<ConformanceParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace bg3::graph

namespace bg3::graph {
namespace {

TEST_P(EngineConformanceTest, DeleteVertexRemovesRecordAndOutEdges) {
  ASSERT_TRUE(db()->AddVertex(1, "props").ok());
  for (VertexId d = 10; d < 40; ++d) {
    ASSERT_TRUE(db()->AddEdge(1, 1, d, "e", 1).ok());
  }
  ASSERT_TRUE(db()->AddEdge(2, 1, 1, "incoming", 1).ok());
  ASSERT_TRUE(db()->DeleteVertex(1, 1).ok());
  EXPECT_TRUE(db()->GetVertex(1).status().IsNotFound());
  std::vector<Neighbor> out;
  ASSERT_TRUE(db()->GetNeighbors(1, 1, 100, &out).ok());
  EXPECT_TRUE(out.empty());
  // Incoming edges are untouched (no in-edge index, by contract).
  EXPECT_TRUE(db()->GetEdge(2, 1, 1).ok());
  // Idempotent.
  ASSERT_TRUE(db()->DeleteVertex(1, 1).ok());
  // The vertex can come back.
  ASSERT_TRUE(db()->AddEdge(1, 1, 99, "fresh", 1).ok());
  EXPECT_EQ(db()->CountNeighbors(1, 1, 10).value(), 1u);
}

}  // namespace
}  // namespace bg3::graph
