// Debug/observability HTTP endpoint (DESIGN.md §5.8): socketless routing
// through DebugServer::HandleRequest, and an end-to-end smoke test over a
// real loopback socket (ephemeral port).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/debug_server.h"
#include "common/metrics_registry.h"

namespace bg3 {
namespace {

TEST(DebugServerRoutingTest, HealthzIsOk) {
  const std::string resp = DebugServer::HandleRequest("/healthz");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_NE(resp.find("\"status\": \"ok\""), std::string::npos);
}

TEST(DebugServerRoutingTest, HealthzRendersRegisteredSources) {
  DebugServer::RegisterHealthSource("routing-test", [] {
    return std::string("\"partitions\": [{\"partition\": 0}]");
  });
  const std::string resp = DebugServer::HandleRequest("/healthz");
  EXPECT_NE(resp.find("\"sources\""), std::string::npos);
  EXPECT_NE(resp.find("\"routing-test\": {\"partitions\": "
                      "[{\"partition\": 0}]}"),
            std::string::npos)
      << resp;

  // Unregister is a barrier: the source is gone from the next render.
  DebugServer::UnregisterHealthSource("routing-test");
  const std::string after = DebugServer::HandleRequest("/healthz");
  EXPECT_EQ(after.find("routing-test"), std::string::npos);
  DebugServer::UnregisterHealthSource("routing-test");  // idempotent
}

TEST(DebugServerRoutingTest, MetricsIsPrometheusExposition) {
  MetricsRegistry::Default().GetCounter("bg3.debugsrv_test.counter")->Add(3);
  const std::string resp = DebugServer::HandleRequest("/metrics");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  // Prometheus names use underscores; dots are sanitized.
  EXPECT_NE(resp.find("bg3_debugsrv_test_counter"), std::string::npos);
}

TEST(DebugServerRoutingTest, TracezAndCostzAreJson) {
  const std::string tracez = DebugServer::HandleRequest("/tracez");
  EXPECT_NE(tracez.find("application/json"), std::string::npos);
  EXPECT_NE(tracez.find("\"traceEvents\""), std::string::npos);

  const std::string costz = DebugServer::HandleRequest("/costz");
  EXPECT_NE(costz.find("application/json"), std::string::npos);
  EXPECT_NE(costz.find("\"pricing\""), std::string::npos);
  EXPECT_NE(costz.find("\"by_layer\""), std::string::npos);
}

TEST(DebugServerRoutingTest, QueryStringIsIgnored) {
  const std::string resp = DebugServer::HandleRequest("/healthz?verbose=1");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST(DebugServerRoutingTest, UnknownPathIs404) {
  const std::string resp = DebugServer::HandleRequest("/nope");
  EXPECT_NE(resp.find("HTTP/1.1 404 Not Found"), std::string::npos);
}

TEST(DebugServerRoutingTest, IndexListsRoutes) {
  const std::string resp = DebugServer::HandleRequest("/");
  EXPECT_NE(resp.find("/metrics"), std::string::npos);
  EXPECT_NE(resp.find("/costz"), std::string::npos);
}

// Issues one HTTP GET against 127.0.0.1:port and returns the raw response.
std::string HttpGet(uint16_t port, const std::string& target) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return "";
  }
  const std::string req = "GET " + target + " HTTP/1.1\r\n"
                          "Host: 127.0.0.1\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = write(fd, req.data() + off, req.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string resp;
  char buf[2048];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return resp;
}

TEST(DebugServerSmokeTest, ServesOverLoopbackSocket) {
  DebugServer server;
  DebugServerOptions opts;
  opts.enabled = true;
  opts.port = 0;  // ephemeral
  ASSERT_TRUE(server.Start(opts).ok());
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("bg3_"), std::string::npos);

  // Serial requests on one accept loop: a second scrape still works.
  const std::string costz = HttpGet(server.port(), "/costz");
  EXPECT_NE(costz.find("\"cloud\""), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(DebugServerSmokeTest, BadBindAddressFailsCleanly) {
  DebugServer server;
  DebugServerOptions opts;
  opts.enabled = true;
  opts.bind_address = "not-an-address";
  const Status s = server.Start(opts);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

TEST(DebugServerSmokeTest, StartIsIdempotentWhileRunning) {
  DebugServer server;
  DebugServerOptions opts;
  opts.enabled = true;
  ASSERT_TRUE(server.Start(opts).ok());
  const uint16_t port = server.port();
  EXPECT_TRUE(server.Start(opts).ok());  // no-op
  EXPECT_EQ(server.port(), port);
  server.Stop();
}

}  // namespace
}  // namespace bg3
