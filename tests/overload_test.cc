// Overload-protection tests (DESIGN.md §5.5): per-class admission control
// with bounded queues, write-throttle watermarks, the cloud-store circuit
// breaker, WAL-backlog write shedding, RO stale-degrade reporting, and the
// deadline edge cases at every API boundary (zero/past = caller bug =
// InvalidArgument; mid-op expiry = DeadlineExceeded preserving the first
// root-cause error; null context = the exact historical fast path).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/cloud_store.h"
#include "cloud/fault_injector.h"
#include "common/circuit_breaker.h"
#include "common/metrics_registry.h"
#include "common/op_context.h"
#include "common/retry.h"
#include "common/time_source.h"
#include "core/admission.h"
#include "core/graph_db.h"
#include "query/query.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"

namespace bg3::core {
namespace {

// ---------------------------------------------------------------------------
// AdmissionController

TEST(AdmissionTest, DisabledAdmitsEverythingAndOnlyCounts) {
  AdmissionController ctrl(AdmissionOptions{});  // enabled = false
  AdmissionController::Permit p;
  for (OpClass cls : {OpClass::kRead, OpClass::kWrite, OpClass::kBackground}) {
    EXPECT_TRUE(ctrl.Admit(cls, nullptr, &p).ok());
  }
  EXPECT_EQ(ctrl.admitted().Get(), 3u);
  EXPECT_EQ(ctrl.shed().Get(), 0u);
  EXPECT_EQ(ctrl.InFlight(OpClass::kRead), 0u) << "disabled = no slot taken";
}

TEST(AdmissionTest, BoundedQueueShedsWhenFull) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.write_slots = 2;
  opts.write_queue = 0;  // no waiting: the third arrival is shed outright.
  AdmissionController ctrl(opts);

  AdmissionController::Permit a, b, c;
  ASSERT_TRUE(ctrl.Admit(OpClass::kWrite, nullptr, &a).ok());
  ASSERT_TRUE(ctrl.Admit(OpClass::kWrite, nullptr, &b).ok());
  EXPECT_EQ(ctrl.InFlight(OpClass::kWrite), 2u);

  const Status s = ctrl.Admit(OpClass::kWrite, nullptr, &c);
  EXPECT_TRUE(s.IsOverloaded());
  EXPECT_NE(s.ToString().find("admission queue full (write)"),
            std::string::npos)
      << s.ToString();
  EXPECT_EQ(ctrl.shed().Get(), 1u);

  a.Release();
  EXPECT_TRUE(ctrl.Admit(OpClass::kWrite, nullptr, &c).ok())
      << "released slot must be reusable";
}

TEST(AdmissionTest, ClassesAreIsolated) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.write_slots = 1;
  opts.write_queue = 0;
  opts.read_slots = 1;
  opts.read_queue = 0;
  AdmissionController ctrl(opts);

  AdmissionController::Permit w, w2, r;
  ASSERT_TRUE(ctrl.Admit(OpClass::kWrite, nullptr, &w).ok());
  EXPECT_TRUE(ctrl.Admit(OpClass::kWrite, nullptr, &w2).IsOverloaded());
  // A saturated write class must not shed reads.
  EXPECT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &r).ok());
}

TEST(AdmissionTest, QueuedWaiterAdmitsWhenSlotFrees) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.read_slots = 1;
  opts.read_queue = 4;
  opts.poll_granularity_us = 200;
  AdmissionController ctrl(opts);

  AdmissionController::Permit held;
  ASSERT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &held).ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    AdmissionController::Permit p;
    ASSERT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &p).ok());
    admitted.store(true);
  });
  // The waiter must actually queue (not shed) before the slot frees.
  while (ctrl.Queued(OpClass::kRead) == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(ctrl.queue_depth().Get(), 1);

  held.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(ctrl.queue_depth().Get(), 0);
  EXPECT_EQ(ctrl.admitted().Get(), 2u);
}

TEST(AdmissionTest, WriteThrottleShedsOnlyWrites) {
  AdmissionOptions opts;
  opts.enabled = true;
  AdmissionController ctrl(opts);

  ctrl.SetWriteThrottle(ThrottleReason::kMemoryPressure |
                        ThrottleReason::kWalBacklog);
  AdmissionController::Permit p;
  const Status s = ctrl.Admit(OpClass::kWrite, nullptr, &p);
  EXPECT_TRUE(s.IsOverloaded());
  EXPECT_NE(s.ToString().find("memory-pressure+wal-backlog"),
            std::string::npos)
      << s.ToString();

  // Reads and background catch-up work drain pressure; they pass.
  AdmissionController::Permit r, b;
  EXPECT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &r).ok());
  EXPECT_TRUE(ctrl.Admit(OpClass::kBackground, nullptr, &b).ok());

  ctrl.SetWriteThrottle(0);
  AdmissionController::Permit w;
  EXPECT_TRUE(ctrl.Admit(OpClass::kWrite, nullptr, &w).ok())
      << "clearing the watermark must restore writes";
}

TEST(AdmissionTest, ExpiredDeadlineDiesInQueueNotInFlight) {
  ManualTimeSource clock;
  clock.SetUs(1'000'000);
  AdmissionOptions opts;
  opts.enabled = true;
  opts.read_slots = 1;
  opts.read_queue = 4;
  opts.poll_granularity_us = 100;
  opts.time_source = &clock;
  AdmissionController ctrl(opts);

  AdmissionController::Permit held;
  ASSERT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &held).ok());

  // Already expired on its own clock: the op queues, notices on the first
  // poll slice, and leaves with DeadlineExceeded (the boundary
  // InvalidArgument check is the owning DB's job, not the controller's).
  OpContext ctx;
  ctx.clock = &clock;
  ctx.deadline_us = 999'999;
  AdmissionController::Permit p;
  const Status s = ctrl.Admit(OpClass::kRead, &ctx, &p);
  EXPECT_TRUE(s.IsDeadlineExceeded());
  EXPECT_NE(s.ToString().find("admission queue (read)"), std::string::npos)
      << s.ToString();
  EXPECT_EQ(ctrl.deadline_exceeded().Get(), 1u);
  EXPECT_EQ(ctrl.Queued(OpClass::kRead), 0u) << "waiter must be unwound";
  EXPECT_EQ(ctrl.queue_depth().Get(), 0);
}

TEST(AdmissionTest, PredictedServiceTimeShedsDoomedArrivalsAtTheDoor) {
  ManualTimeSource clock;
  AdmissionOptions opts;
  opts.enabled = true;
  opts.read_slots = 2;
  opts.read_queue = 8;
  opts.time_source = &clock;
  AdmissionController ctrl(opts);

  // Seed the service-time estimate: one permit held for 10 ms.
  {
    AdmissionController::Permit p;
    ASSERT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &p).ok());
    clock.AdvanceUs(10'000);
  }

  // One op in flight, one slot still free.
  AdmissionController::Permit busy;
  ASSERT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &busy).ok());

  // The free slot is not enough: 1 ms of budget cannot survive a ~10 ms
  // expected service (default margin 2.0), so the op is shed instead of
  // wasting a full service time and finishing late.
  const OpContext tight = OpContext::WithTimeout(&clock, 1'000);
  AdmissionController::Permit p;
  const Status s = ctrl.Admit(OpClass::kRead, &tight, &p);
  EXPECT_TRUE(s.IsOverloaded());
  EXPECT_NE(s.ToString().find("predicted service time"), std::string::npos)
      << s.ToString();

  // A roomy deadline takes the free slot normally.
  const OpContext roomy = OpContext::WithTimeout(&clock, 60'000'000);
  EXPECT_TRUE(ctrl.Admit(OpClass::kRead, &roomy, &p).ok());
  p.Release();
}

TEST(AdmissionTest, PoisonedEstimateRecoversThroughProbes) {
  ManualTimeSource clock;
  AdmissionOptions opts;
  opts.enabled = true;
  opts.read_slots = 2;
  opts.read_queue = 8;
  opts.time_source = &clock;
  AdmissionController ctrl(opts);

  // Poison the estimate: the very first sample (no prior to clamp
  // against) is a 10 s "service".
  {
    AdmissionController::Permit p;
    ASSERT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &p).ok());
    clock.AdvanceUs(10'000'000);
  }

  // Immediately after, a tight op is shed — the estimate says it cannot
  // finish in time.
  {
    const OpContext tight = OpContext::WithTimeout(&clock, 1'000);
    AdmissionController::Permit p;
    EXPECT_TRUE(ctrl.Admit(OpClass::kRead, &tight, &p).IsOverloaded());
  }

  // But the shed must not latch: once no sample has refreshed the
  // estimate for service_probe_interval_us, one op is admitted as a
  // probe, and its fast real sample pulls the EWMA back down.
  for (int i = 0; i < 100; ++i) {
    clock.AdvanceUs(opts.service_probe_interval_us + 1);
    const OpContext tight = OpContext::WithTimeout(&clock, 1'000);
    AdmissionController::Permit p;
    ASSERT_TRUE(ctrl.Admit(OpClass::kRead, &tight, &p).ok()) << "probe " << i;
    clock.AdvanceUs(10);  // real service is fast
    p.Release();
  }

  // Estimate has recovered: a moderate deadline now clears the
  // service-time check on its own merits, no probe interval needed.
  AdmissionController::Permit busy;
  ASSERT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &busy).ok());
  const OpContext moderate = OpContext::WithTimeout(&clock, 1'000);
  AdmissionController::Permit p;
  EXPECT_TRUE(ctrl.Admit(OpClass::kRead, &moderate, &p).ok());
}

TEST(AdmissionTest, SampleClampKeepsOneOutlierFromPoisoning) {
  ManualTimeSource clock;
  AdmissionOptions opts;
  opts.enabled = true;
  opts.read_slots = 2;
  opts.read_queue = 8;
  opts.time_source = &clock;
  AdmissionController ctrl(opts);

  // Establish a healthy ~100 us estimate.
  for (int i = 0; i < 20; ++i) {
    AdmissionController::Permit p;
    ASSERT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &p).ok());
    clock.AdvanceUs(100);
    p.Release();
  }

  // One wild outlier: a 10 s "service" (scheduler preemption mid-op).
  {
    AdmissionController::Permit p;
    ASSERT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &p).ok());
    clock.AdvanceUs(10'000'000);
    p.Release();
  }

  // The clamp (8x current estimate) bounds the damage: a 1 ms budget
  // still clears margin x EWMA, so normal traffic keeps flowing.
  const OpContext moderate = OpContext::WithTimeout(&clock, 1'000);
  AdmissionController::Permit p;
  EXPECT_TRUE(ctrl.Admit(OpClass::kRead, &moderate, &p).ok());
}

TEST(AdmissionTest, PredictedQueueWaitShedsBeforeQueueing) {
  ManualTimeSource clock;
  AdmissionOptions opts;
  opts.enabled = true;
  opts.read_slots = 1;
  opts.read_queue = 8;
  opts.service_time_margin = 0.5;  // isolate the queue-wait predictor.
  opts.time_source = &clock;
  AdmissionController ctrl(opts);

  {
    AdmissionController::Permit p;
    ASSERT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &p).ok());
    clock.AdvanceUs(10'000);  // EWMA service estimate: 10 ms.
  }

  AdmissionController::Permit held;
  ASSERT_TRUE(ctrl.Admit(OpClass::kRead, nullptr, &held).ok());

  // 8 ms of budget clears the service check (margin 0.5 -> 5 ms) but not
  // the predicted queue wait (~10 ms for one position): shed, never queue.
  const OpContext ctx = OpContext::WithTimeout(&clock, 8'000);
  AdmissionController::Permit p;
  const Status s = ctrl.Admit(OpClass::kRead, &ctx, &p);
  EXPECT_TRUE(s.IsOverloaded());
  EXPECT_NE(s.ToString().find("predicted admission wait"), std::string::npos)
      << s.ToString();

  // The same arrival with a comfortable deadline queues instead (and is
  // admitted once the slot frees).
  const OpContext roomy = OpContext::WithTimeout(&clock, 60'000'000);
  std::thread waiter([&] {
    AdmissionController::Permit q;
    EXPECT_TRUE(ctrl.Admit(OpClass::kRead, &roomy, &q).ok());
  });
  while (ctrl.Queued(OpClass::kRead) == 0) std::this_thread::yield();
  held.Release();
  waiter.join();
}

// ---------------------------------------------------------------------------
// Circuit breaker

CircuitBreakerOptions BreakerOpts() {
  CircuitBreakerOptions o;
  o.enabled = true;
  o.failure_threshold = 3;
  o.failure_window_us = 1'000'000;
  o.open_cooldown_us = 200'000;
  o.half_open_probes = 1;
  o.close_after_successes = 2;
  return o;
}

TEST(CircuitBreakerTest, TripsAfterThresholdWithinWindow) {
  ManualTimeSource clock;
  CircuitBreaker br(BreakerOpts(), &clock);
  EXPECT_TRUE(br.Allow());
  br.RecordFailure();
  br.RecordFailure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  br.RecordFailure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.trips(), 1u);
  EXPECT_FALSE(br.Allow());
  EXPECT_GT(br.rejected(), 0u);
  EXPECT_EQ(br.state_gauge().Get(), 1);
}

TEST(CircuitBreakerTest, FailuresOutsideWindowDoNotTrip) {
  ManualTimeSource clock;
  CircuitBreaker br(BreakerOpts(), &clock);
  br.RecordFailure();
  br.RecordFailure();
  clock.AdvanceUs(2'000'000);  // window expires; the count restarts.
  br.RecordFailure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbesCloseOnSuccess) {
  ManualTimeSource clock;
  CircuitBreaker br(BreakerOpts(), &clock);
  for (int i = 0; i < 3; ++i) br.RecordFailure();
  ASSERT_EQ(br.state(), CircuitBreaker::State::kOpen);

  clock.AdvanceUs(300'000);  // past the cooldown.
  EXPECT_TRUE(br.Allow()) << "first probe after cooldown must pass";
  EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(br.Allow()) << "half_open_probes=1 admits a single probe";
  br.RecordSuccess();
  EXPECT_TRUE(br.Allow());
  br.RecordSuccess();  // close_after_successes = 2.
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(br.state_gauge().Get(), 0);
}

TEST(CircuitBreakerTest, ProbeErrorReopensAndFreesTheProbeSlot) {
  ManualTimeSource clock;
  CircuitBreaker br(BreakerOpts(), &clock);
  for (int i = 0; i < 3; ++i) br.RecordFailure();
  clock.AdvanceUs(300'000);
  ASSERT_TRUE(br.Allow());
  br.RecordError();  // the probe op itself failed: back to open.
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);

  // The reopened breaker must half-open again after another cooldown —
  // i.e. the failed probe's slot did not leak.
  clock.AdvanceUs(300'000);
  EXPECT_TRUE(br.Allow());
  EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, OpenStoreFailsFastWithOverloaded) {
  cloud::ManualTimeSource clock;
  cloud::CloudStoreOptions opts;
  opts.breaker = BreakerOpts();
  opts.time_source = &clock;
  cloud::CloudStore store(opts);
  const auto stream = store.CreateStream("s");
  ASSERT_TRUE(store.Append(stream, "payload").ok());

  for (int i = 0; i < 3; ++i) store.breaker().RecordFailure();
  ASSERT_EQ(store.breaker().state(), CircuitBreaker::State::kOpen);

  const auto append = store.Append(stream, "more");
  EXPECT_TRUE(append.status().IsOverloaded()) << append.status().ToString();

  // Recovery: cooldown, then successful probes close the breaker and the
  // store serves normally again.
  clock.AdvanceUs(300'000);
  while (store.breaker().state() != CircuitBreaker::State::kClosed) {
    ASSERT_TRUE(store.Append(stream, "probe").ok());
  }
  EXPECT_TRUE(store.Append(stream, "after").ok());
}

// ---------------------------------------------------------------------------
// Deadline edge cases at the API boundary (satellite d)

struct DbFixture {
  explicit DbFixture(GraphDBOptions opts = {}) {
    cloud::CloudStoreOptions copts;
    copts.extent_capacity = 1 << 16;
    store = std::make_unique<cloud::CloudStore>(copts);
    if (opts.time_source == nullptr) opts.time_source = &clock;
    db = std::make_unique<GraphDB>(store.get(), opts);
  }
  cloud::ManualTimeSource clock;
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<GraphDB> db;
};

TEST(DeadlineBoundaryTest, PastDeadlineIsInvalidArgumentNotDeadlineExceeded) {
  DbFixture f;
  f.clock.SetUs(1'000'000);
  OpContext past;
  past.clock = &f.clock;
  past.deadline_us = 500'000;
  const Status s = f.db->AddVertex(1, "v", &past);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.ToString().find("already past at the API boundary"),
            std::string::npos)
      << s.ToString();
  // A rejected context must not have touched the tree.
  EXPECT_TRUE(f.db->GetVertex(1).status().IsNotFound());
}

TEST(DeadlineBoundaryTest, DeadlineWithoutClockIsInvalidArgument) {
  DbFixture f;
  OpContext no_clock;
  no_clock.deadline_us = 123;
  const Status s = f.db->GetVertex(1, &no_clock).status();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.ToString().find("without a clock"), std::string::npos);
}

TEST(DeadlineBoundaryTest, NullAndDeadlinelessContextsTakeTheOldPath) {
  DbFixture f;
  ASSERT_TRUE(f.db->AddVertex(7, "props").ok());  // null ctx (default arg)
  OpContext empty;                                // non-null, no deadline
  EXPECT_EQ(f.db->GetVertex(7, &empty).value(), "props");
  ASSERT_TRUE(f.db->AddEdge(7, 1, 8, "e", 1, &empty).ok());
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(7, 1, 10, &out, nullptr).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(DeadlineBoundaryTest, ValidDeadlineWithRoomSucceeds) {
  DbFixture f;
  const OpContext ctx = OpContext::WithTimeout(&f.clock, 10'000'000);
  ASSERT_TRUE(f.db->AddVertex(1, "v", &ctx).ok());
  EXPECT_EQ(f.db->GetVertex(1, &ctx).value(), "v");
}

TEST(DeadlineRetryTest, MidRetryExpiryPreservesFirstRootCause) {
  ManualTimeSource clock;
  const OpContext ctx = OpContext::WithTimeout(&clock, 5'000);
  RetryOptions opts;
  opts.ctx = &ctx;
  opts.max_attempts = 10;
  opts.jitter = false;
  opts.initial_backoff_us = 4'000;
  opts.sleep = [&clock](uint64_t us) { clock.AdvanceUs(us); };

  int attempts = 0;
  const Status s = RetryWithBackoff(opts, [&]() -> Status {
    ++attempts;
    return Status::IOError("root-cause: extent 42 unreachable");
  });
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_NE(s.ToString().find("deadline expired during retry"),
            std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("root-cause: extent 42 unreachable"),
            std::string::npos)
      << "the first error of the sequence must survive: " << s.ToString();
  EXPECT_LT(attempts, 10) << "the deadline, not the budget, must end the loop";
}

TEST(DeadlineRetryTest, ExpiryBeforeFirstAttemptSaysSo) {
  ManualTimeSource clock;
  clock.SetUs(100);
  OpContext ctx;
  ctx.clock = &clock;
  ctx.deadline_us = 50;  // already past
  RetryOptions opts;
  opts.ctx = &ctx;
  int attempts = 0;
  const Status s = RetryWithBackoff(opts, [&]() -> Status {
    ++attempts;
    return Status::OK();
  });
  EXPECT_TRUE(s.IsDeadlineExceeded());
  EXPECT_NE(s.ToString().find("before I/O attempt"), std::string::npos);
  EXPECT_EQ(attempts, 0) << "no work may start past the deadline";
}

TEST(DeadlineQueryTest, TraversalStopsBetweenHops) {
  DbFixture f;
  for (graph::VertexId v = 0; v < 4; ++v) {
    ASSERT_TRUE(f.db->AddEdge(v, 1, v + 1, "e", 1).ok());
  }
  const OpContext ctx = OpContext::WithTimeout(&f.clock, 1'000);
  // The Where step burns the budget; the following Out must not run.
  auto result = query::Query(f.db.get())
                    .Context(&ctx)
                    .V(0)
                    .Out(1)
                    .Where([&](graph::VertexId) {
                      f.clock.AdvanceUs(10'000);
                      return true;
                    })
                    .Out(1)
                    .Execute();
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("query step"), std::string::npos);
}

// ---------------------------------------------------------------------------
// GraphDB integration: admission + watermarks + metrics

TEST(GraphDbOverloadTest, OverloadMetricsAreRegistered) {
  DbFixture f;
  const std::string& p = f.db->metrics_prefix();
  const auto snap = MetricsRegistry::Default().TakeSnapshot();
  EXPECT_TRUE(snap.counters.count(p + "overload.admitted"));
  EXPECT_TRUE(snap.counters.count(p + "overload.shed"));
  EXPECT_TRUE(snap.counters.count(p + "overload.deadline_exceeded"));
  EXPECT_TRUE(snap.counters.count(p + "overload.write_throttle"));
  EXPECT_TRUE(snap.gauges.count(p + "overload.queue_depth"));
  EXPECT_TRUE(snap.gauges.count(p + "overload.breaker_state"));
}

TEST(GraphDbOverloadTest, MemoryWatermarkShedsWritesButServesReads) {
  GraphDBOptions opts;
  opts.admission.enabled = true;
  opts.admission.memory_throttle_ratio = 0.5;
  opts.memory_budget_bytes = 1;  // any resident page exceeds the watermark.
  DbFixture f(std::move(opts));

  ASSERT_TRUE(f.db->AddVertex(1, "resident").ok());
  f.db->RefreshOverloadState();
  EXPECT_EQ(f.db->admission().write_throttle_reasons(),
            ThrottleReason::kMemoryPressure);

  const Status w = f.db->AddVertex(2, "refused");
  EXPECT_TRUE(w.IsOverloaded()) << w.ToString();
  EXPECT_NE(w.ToString().find("memory-pressure"), std::string::npos);
  EXPECT_TRUE(f.db->GetVertex(2).status().IsNotFound())
      << "a shed write must leave no trace";

  // Graceful degradation: reads keep serving under the same pressure.
  EXPECT_EQ(f.db->GetVertex(1).value(), "resident");
  EXPECT_GT(f.db->admission().shed().Get(), 0u);

  // The throttle bit is the gate: clearing it restores writes.
  f.db->admission().SetWriteThrottle(0);
  EXPECT_TRUE(f.db->AddVertex(2, "accepted").ok());
}

TEST(GraphDbOverloadTest, WatermarkRefreshesOnWriteCadenceWithoutHelp) {
  GraphDBOptions opts;
  opts.admission.enabled = true;
  opts.admission.memory_throttle_ratio = 0.5;
  opts.memory_budget_bytes = 1;
  DbFixture f(std::move(opts));

  // No manual RefreshOverloadState: the periodic in-band refresh (every
  // 256 admitted writes) must notice the pressure by itself.
  Status s = Status::OK();
  for (int i = 0; i < 600 && s.ok(); ++i) {
    s = f.db->AddVertex(100 + i, "filler");
  }
  EXPECT_TRUE(s.IsOverloaded())
      << "write cadence never tripped the memory watermark: " << s.ToString();
}

TEST(GraphDbOverloadTest, AdmissionDisabledByDefaultCostsNothing) {
  DbFixture f;
  EXPECT_FALSE(f.db->admission().enabled());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.db->AddVertex(i, "v").ok());
  }
  EXPECT_EQ(f.db->admission().shed().Get(), 0u);
  EXPECT_EQ(f.db->admission().write_throttle_reasons(), 0u)
      << "no watermark evaluation without opt-in";
}

// ---------------------------------------------------------------------------
// WAL-backlog watermark (RW node) and RO stale-degrade gauge

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

TEST(WalBacklogTest, WatermarkShedsWritesAndKeepsReads) {
  auto store = std::make_unique<cloud::CloudStore>();
  replication::RwNodeOptions opts;
  opts.tree.tree_id = 1;
  opts.tree.base_stream = store->CreateStream("base");
  opts.tree.delta_stream = store->CreateStream("delta");
  opts.wal.stream = store->CreateStream("wal");
  opts.wal.group_size = 1'000;  // records accumulate in the group buffer.
  opts.wal_backlog_watermark = 8;
  replication::RwNode rw(store.get(), opts);

  Status s = Status::OK();
  int accepted = 0;
  for (int i = 0; i < 64; ++i) {
    s = rw.Put(Key(i), "v");
    if (!s.ok()) break;
    ++accepted;
  }
  EXPECT_TRUE(s.IsOverloaded()) << s.ToString();
  EXPECT_NE(s.ToString().find("WAL"), std::string::npos) << s.ToString();
  EXPECT_GE(accepted, 8) << "nothing may shed below the watermark";
  EXPECT_GT(rw.writes_shed(), 0u);

  // Reads never shed here: every accepted key is still served from memory.
  for (int i = 0; i < accepted; ++i) {
    EXPECT_EQ(rw.Get(Key(i)).value(), "v");
  }
}

TEST(WalBacklogTest, ZeroWatermarkKeepsHistoricalBehavior) {
  auto store = std::make_unique<cloud::CloudStore>();
  replication::RwNodeOptions opts;
  opts.tree.tree_id = 1;
  opts.tree.base_stream = store->CreateStream("base");
  opts.tree.delta_stream = store->CreateStream("delta");
  opts.wal.stream = store->CreateStream("wal");
  opts.wal.group_size = 1'000;
  replication::RwNode rw(store.get(), opts);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(rw.Put(Key(i), "v").ok());
  }
  EXPECT_EQ(rw.writes_shed(), 0u);
}

TEST(RoDegradeTest, GaugeTracksStaleServingAndCatchUp) {
  auto store = std::make_unique<cloud::CloudStore>();
  replication::RwNodeOptions rw_opts;
  rw_opts.tree.tree_id = 1;
  rw_opts.tree.base_stream = store->CreateStream("base");
  rw_opts.tree.delta_stream = store->CreateStream("delta");
  rw_opts.wal.stream = store->CreateStream("wal");
  rw_opts.flush_group_pages = 4;
  replication::RwNode rw(store.get(), rw_opts);

  replication::RoNodeOptions ro_opts;
  ro_opts.wal_stream = rw_opts.wal.stream;
  ro_opts.retry.max_attempts = 2;
  replication::RoNode ro(store.get(), ro_opts);

  for (int i = 0; i < 20; ++i) ASSERT_TRUE(rw.Put(Key(i), "v0").ok());
  ASSERT_TRUE(ro.Get(1, Key(0)).ok());
  EXPECT_EQ(ro.stats().degraded.Get(), 0);

  // New writes land first, then the substrate breaks: WAL tailing exhausts
  // its retry budget, the node degrades to the last consistent state it
  // replicated and raises the gauge.
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(rw.Put(Key(100 + i), "v1").ok());
  cloud::FaultInjectorOptions fi_opts;
  fi_opts.transient_error_p = 1.0;
  cloud::FaultInjector fi(fi_opts);
  store->SetFaultInjector(&fi);

  EXPECT_TRUE(ro.Get(1, Key(0)).ok()) << "degraded node still serves reads";
  EXPECT_EQ(ro.stats().degraded.Get(), 1);
  EXPECT_GT(ro.stats().poll_degraded.Get(), 0u);

  // Heal the substrate: the next successful tail that fully drains the WAL
  // clears the gauge.
  store->SetFaultInjector(nullptr);
  ASSERT_TRUE(ro.PollWal().ok());
  EXPECT_EQ(ro.stats().degraded.Get(), 0);
  EXPECT_EQ(ro.Get(1, Key(100)).value(), "v1");
}

}  // namespace
}  // namespace bg3::core
