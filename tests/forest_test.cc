#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "cloud/cloud_store.h"
#include "forest/forest.h"

namespace bg3::forest {
namespace {

struct ForestFixture {
  explicit ForestFixture(ForestOptions opts = {}) {
    cloud::CloudStoreOptions copts;
    copts.extent_capacity = 1 << 16;
    store = std::make_unique<cloud::CloudStore>(copts);
    opts.tree_options.base_stream = store->CreateStream("base");
    opts.tree_options.delta_stream = store->CreateStream("delta");
    forest = std::make_unique<BwTreeForest>(store.get(), opts);
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<BwTreeForest> forest;
};

std::string SortKey(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "s%06d", i);
  return buf;
}

// --- key encoding ------------------------------------------------------------

TEST(ForestKeyTest, InitKeyOrdersByOwnerThenSortKey) {
  EXPECT_LT(BwTreeForest::MakeInitKey(1, "zzz"),
            BwTreeForest::MakeInitKey(2, "aaa"));
  EXPECT_LT(BwTreeForest::MakeInitKey(5, "a"),
            BwTreeForest::MakeInitKey(5, "b"));
  EXPECT_EQ(BwTreeForest::OwnerPrefix(7).size(), 8u);
}

// --- basic ops ---------------------------------------------------------------

TEST(ForestTest, UpsertGetRoundTrip) {
  ForestFixture f;
  ASSERT_TRUE(f.forest->Upsert(1, "k", "v").ok());
  EXPECT_EQ(f.forest->Get(1, "k").value(), "v");
}

TEST(ForestTest, GetUnknownOwnerIsNotFound) {
  ForestFixture f;
  EXPECT_TRUE(f.forest->Get(99, "k").status().IsNotFound());
}

TEST(ForestTest, OwnersAreIsolated) {
  ForestFixture f;
  ASSERT_TRUE(f.forest->Upsert(1, "k", "owner1").ok());
  ASSERT_TRUE(f.forest->Upsert(2, "k", "owner2").ok());
  EXPECT_EQ(f.forest->Get(1, "k").value(), "owner1");
  EXPECT_EQ(f.forest->Get(2, "k").value(), "owner2");
  ASSERT_TRUE(f.forest->Delete(1, "k").ok());
  EXPECT_TRUE(f.forest->Get(1, "k").status().IsNotFound());
  EXPECT_TRUE(f.forest->Get(2, "k").ok());
}

TEST(ForestTest, DeleteDecrementsCount) {
  ForestFixture f;
  ASSERT_TRUE(f.forest->Upsert(1, "a", "v").ok());
  ASSERT_TRUE(f.forest->Upsert(1, "b", "v").ok());
  EXPECT_EQ(f.forest->OwnerEntryCount(1), 2u);
  ASSERT_TRUE(f.forest->Delete(1, "a").ok());
  EXPECT_EQ(f.forest->OwnerEntryCount(1), 1u);
}

// --- split-out behaviour -------------------------------------------------------

TEST(ForestTest, SmallOwnersStayInInitTree) {
  ForestOptions opts;
  opts.split_out_threshold = 100;
  ForestFixture f(opts);
  for (int owner = 0; owner < 20; ++owner) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(f.forest->Upsert(owner, SortKey(i), "v").ok());
    }
  }
  EXPECT_EQ(f.forest->DedicatedTreeCount(), 0u);
  EXPECT_EQ(f.forest->InitEntryCount(), 100u);
}

TEST(ForestTest, HotOwnerSplitsOutBeyondThreshold) {
  ForestOptions opts;
  opts.split_out_threshold = 10;
  ForestFixture f(opts);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(f.forest->Upsert(7, SortKey(i), "v" + std::to_string(i)).ok());
  }
  EXPECT_EQ(f.forest->DedicatedTreeCount(), 1u);
  EXPECT_EQ(f.forest->stats().split_outs.Get(), 1u);
  // All data still reachable after migration, via Get and scan.
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(f.forest->Get(7, SortKey(i)).value(), "v" + std::to_string(i));
  }
  std::vector<bwtree::Entry> out;
  ASSERT_TRUE(f.forest->ScanOwner(7, "", 1000, &out).ok());
  EXPECT_EQ(out.size(), 25u);
  // INIT tree no longer holds the owner's entries.
  EXPECT_EQ(f.forest->InitEntryCount(), 0u);
}

TEST(ForestTest, ThresholdZeroDedicatesImmediately) {
  ForestOptions opts;
  opts.split_out_threshold = 0;
  ForestFixture f(opts);
  for (int owner = 0; owner < 5; ++owner) {
    ASSERT_TRUE(f.forest->Upsert(owner, "k", "v").ok());
  }
  EXPECT_EQ(f.forest->DedicatedTreeCount(), 5u);
  EXPECT_EQ(f.forest->TreeCount(), 6u);  // + INIT
}

TEST(ForestTest, InitCapacityEvictsLargestOwner) {
  ForestOptions opts;
  opts.split_out_threshold = 1000;  // never split by per-owner threshold
  opts.init_tree_capacity = 50;
  ForestFixture f(opts);
  // Owner 3 is the heaviest.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(f.forest->Upsert(3, SortKey(i), "big").ok());
  }
  for (int owner = 0; owner < 10; ++owner) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(f.forest->Upsert(100 + owner, SortKey(i), "small").ok());
    }
  }
  EXPECT_GE(f.forest->stats().evictions.Get(), 1u);
  // The heavy owner was the eviction victim.
  std::vector<bwtree::Entry> out;
  ASSERT_TRUE(f.forest->ScanOwner(3, "", 1000, &out).ok());
  EXPECT_EQ(out.size(), 30u);
}

TEST(ForestTest, DedicatedTreeUsesShortKeys) {
  // After split-out, scanning returns the same sort keys (prefix stripped),
  // and the dedicated tree's memory is smaller than the equivalent INIT
  // encoding would be (8 bytes saved per entry).
  ForestOptions opts;
  opts.split_out_threshold = 5;
  ForestFixture f(opts);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.forest->Upsert(42, SortKey(i), "v").ok());
  }
  std::vector<bwtree::Entry> out;
  ASSERT_TRUE(f.forest->ScanOwner(42, "", 100, &out).ok());
  ASSERT_EQ(out.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(out[i].key, SortKey(i));
}

TEST(ForestTest, ScanOwnerRespectsStartAndLimit) {
  ForestFixture f;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(f.forest->Upsert(1, SortKey(i), "v").ok());
  }
  std::vector<bwtree::Entry> out;
  ASSERT_TRUE(f.forest->ScanOwner(1, SortKey(10), 5, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.front().key, SortKey(10));
  EXPECT_EQ(out.back().key, SortKey(14));
}

TEST(ForestTest, ScanDoesNotLeakNeighborOwners) {
  ForestFixture f;
  ASSERT_TRUE(f.forest->Upsert(1, "a", "v1").ok());
  ASSERT_TRUE(f.forest->Upsert(2, "b", "v2").ok());
  ASSERT_TRUE(f.forest->Upsert(3, "c", "v3").ok());
  std::vector<bwtree::Entry> out;
  ASSERT_TRUE(f.forest->ScanOwner(2, "", 100, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, "b");
}

TEST(ForestTest, MaxOwnerIdBoundary) {
  ForestFixture f;
  const OwnerId max_owner = ~0ull;
  ASSERT_TRUE(f.forest->Upsert(max_owner, "k", "v").ok());
  EXPECT_EQ(f.forest->Get(max_owner, "k").value(), "v");
  std::vector<bwtree::Entry> out;
  ASSERT_TRUE(f.forest->ScanOwner(max_owner, "", 10, &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

// --- registry / stats ----------------------------------------------------------

TEST(ForestTest, ResolveTreeFindsInitAndDedicated) {
  ForestOptions opts;
  opts.split_out_threshold = 0;
  ForestFixture f(opts);
  EXPECT_EQ(f.forest->ResolveTree(0), f.forest->init_tree());
  ASSERT_TRUE(f.forest->Upsert(9, "k", "v").ok());
  EXPECT_NE(f.forest->ResolveTree(1), nullptr);
  EXPECT_EQ(f.forest->ResolveTree(12345), nullptr);
}

TEST(ForestTest, MemoryGrowsWithTreeCount) {
  ForestOptions few_opts;
  few_opts.split_out_threshold = 1000;
  ForestFixture few(few_opts);
  ForestOptions many_opts;
  many_opts.split_out_threshold = 0;
  ForestFixture many(many_opts);
  for (int owner = 0; owner < 200; ++owner) {
    ASSERT_TRUE(few.forest->Upsert(owner, "k", "v").ok());
    ASSERT_TRUE(many.forest->Upsert(owner, "k", "v").ok());
  }
  // One tree per owner costs strictly more memory than one shared INIT
  // tree (§3.2.1 Observation 3).
  EXPECT_GT(many.forest->ApproxMemoryBytes(), few.forest->ApproxMemoryBytes());
}

// --- concurrency ----------------------------------------------------------------

TEST(ForestTest, ConcurrentOwnersDoNotInterfere) {
  ForestOptions opts;
  opts.split_out_threshold = 50;
  ForestFixture f(opts);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(
            f.forest->Upsert(t, SortKey(i), std::to_string(t)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(f.forest->OwnerEntryCount(t), 200u);
    std::vector<bwtree::Entry> out;
    ASSERT_TRUE(f.forest->ScanOwner(t, "", 1000, &out).ok());
    ASSERT_EQ(out.size(), 200u) << "owner " << t;
    for (const auto& e : out) EXPECT_EQ(e.value, std::to_string(t));
  }
  // Every owner crossed the threshold.
  EXPECT_EQ(f.forest->DedicatedTreeCount(), 8u);
}

TEST(ForestTest, ConcurrentWritersOnSharedInitTree) {
  ForestOptions opts;
  opts.split_out_threshold = 1u << 30;  // everything stays in INIT
  ForestFixture f(opts);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(f.forest->Upsert(t * 1000 + i, "k", "v").ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(f.forest->InitEntryCount(), 2000u);
}

}  // namespace
}  // namespace bg3::forest

namespace bg3::forest {
namespace {

TEST(ForestTest, DedicateOwnerForcesSplitOutAndIsIdempotent) {
  ForestOptions opts;
  opts.split_out_threshold = ~0ull;
  ForestFixture f(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(f.forest->Upsert(5, SortKey(i), "v").ok());
  }
  EXPECT_EQ(f.forest->DedicatedTreeCount(), 0u);
  ASSERT_TRUE(f.forest->DedicateOwner(5).ok());
  EXPECT_EQ(f.forest->DedicatedTreeCount(), 1u);
  ASSERT_TRUE(f.forest->DedicateOwner(5).ok());  // idempotent
  EXPECT_EQ(f.forest->DedicatedTreeCount(), 1u);
  std::vector<bwtree::Entry> out;
  ASSERT_TRUE(f.forest->ScanOwner(5, "", 100, &out).ok());
  EXPECT_EQ(out.size(), 10u);
}

TEST(ForestTest, DedicateOwnerBeforeAnyWrite) {
  ForestFixture f;
  ASSERT_TRUE(f.forest->DedicateOwner(9).ok());
  ASSERT_TRUE(f.forest->Upsert(9, "k", "v").ok());
  EXPECT_EQ(f.forest->Get(9, "k").value(), "v");
  EXPECT_EQ(f.forest->InitEntryCount(), 0u);  // never touched INIT
}

// --- forest-wide residency budget --------------------------------------------

// Regression: cold-page eviction used to take a per-tree resident-page
// target, so the post-eviction footprint scaled linearly with the tree
// count — split-outs silently grew memory under a "fixed" setting. The
// byte budget must hold regardless of how many trees the forest fans out
// into.
TEST(ForestTest, ResidentBytesPinnedAcrossSplitOuts) {
  ForestOptions opts;
  opts.split_out_threshold = 8;  // many dedicated trees
  opts.tree_options.max_leaf_entries = 16;
  opts.tree_options.consolidate_threshold = 4;
  ForestFixture f(opts);

  const std::string value(64, 'x');
  for (int owner = 1; owner <= 24; ++owner) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(f.forest->Upsert(owner, SortKey(i), value).ok());
    }
  }
  ASSERT_GT(f.forest->DedicatedTreeCount(), 8u);

  // Quiesce: flush every tree so all leaves are clean and thus evictable.
  std::vector<bwtree::BwTree*> trees;
  f.forest->AppendTrees(&trees);
  for (bwtree::BwTree* t : trees) (void)t->FlushDirtyPages(~size_t{0});

  const size_t before = f.forest->TotalResidentBytes();
  ASSERT_GT(before, 0u);
  const size_t budget = before / 4;
  const EvictToBudgetResult r = f.forest->EvictToBudget(budget);
  EXPECT_GT(r.pages_evicted, 0u);
  // The byte budget holds no matter how many trees exist — the property
  // the per-tree page target violated.
  EXPECT_LE(f.forest->TotalResidentBytes(), budget);

  // Evicted data reloads transparently.
  for (int owner = 1; owner <= 24; ++owner) {
    for (int i = 0; i < 40; i += 7) {
      EXPECT_EQ(f.forest->Get(owner, SortKey(i)).value(), value);
    }
  }
  f.forest->CheckInvariants();
}

// The budget pass evicts globally coldest-first: after touching one
// owner's pages last, a partial eviction should preferentially keep them.
TEST(ForestTest, BudgetEvictionKeepsHottestPages) {
  ForestOptions opts;
  opts.split_out_threshold = 8;
  opts.tree_options.max_leaf_entries = 16;
  opts.tree_options.consolidate_threshold = 4;
  ForestFixture f(opts);

  const std::string value(64, 'x');
  for (int owner = 1; owner <= 8; ++owner) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(f.forest->Upsert(owner, SortKey(i), value).ok());
    }
  }
  std::vector<bwtree::BwTree*> trees;
  f.forest->AppendTrees(&trees);
  for (bwtree::BwTree* t : trees) (void)t->FlushDirtyPages(~size_t{0});

  // Heat exactly one owner; its tree's leaves now carry the newest ticks.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(f.forest->Get(3, SortKey(i)).ok());
    }
  }
  const uint64_t reloads_before = [&] {
    uint64_t sum = 0;
    for (bwtree::BwTree* t : trees) sum += t->stats().page_reloads.Get();
    return sum;
  }();

  BG3_IGNORE_STATUS(f.forest->EvictToBudget(f.forest->TotalResidentBytes() / 2));

  // Re-reading the hot owner must not need reloads: its pages survived.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(f.forest->Get(3, SortKey(i)).ok());
  }
  uint64_t reloads_after = 0;
  for (bwtree::BwTree* t : trees) reloads_after += t->stats().page_reloads.Get();
  EXPECT_EQ(reloads_after, reloads_before);
}

}  // namespace
}  // namespace bg3::forest
