// Deterministic fault injection for the simulated cloud substrate: every
// fault class (transient error, latency spike, torn append, corrupt read)
// is exercised against the hardened callers — and shown to hurt when the
// retry/degradation paths are disabled (ISSUE 2 acceptance matrix).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "cloud/fault_injector.h"
#include "cloud/types.h"
#include "common/retry.h"
#include "gc/extent_usage.h"
#include "gc/policy.h"
#include "gc/space_reclaimer.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"
#include "wal/reader.h"
#include "wal/record.h"
#include "wal/writer.h"

namespace bg3 {
namespace {

using cloud::CloudStore;
using cloud::FaultClass;
using cloud::FaultDecision;
using cloud::FaultInjector;
using cloud::FaultInjectorOptions;
using cloud::FaultOp;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

// --- injector determinism -----------------------------------------------------

std::vector<std::string> DriveSchedule(uint64_t seed) {
  FaultInjectorOptions opts;
  opts.seed = seed;
  opts.transient_error_p = 0.10;
  opts.latency_spike_p = 0.10;
  opts.torn_append_p = 0.05;
  opts.corrupt_read_p = 0.05;
  FaultInjector fi(opts);
  std::vector<std::string> trace;
  for (int i = 0; i < 400; ++i) {
    const FaultOp op = (i % 2 == 0) ? FaultOp::kAppend : FaultOp::kRead;
    const FaultDecision d = fi.Decide(op);
    char buf[64];
    snprintf(buf, sizeof(buf), "%d:%d%d%d:%llu", i, d.fail, d.torn, d.corrupt,
             static_cast<unsigned long long>(d.extra_latency_us));
    trace.push_back(buf);
  }
  return trace;
}

TEST(FaultInjectorTest, SameSeedReplaysIdenticalSchedule) {
  const auto a = DriveSchedule(0xDECADE);
  const auto b = DriveSchedule(0xDECADE);
  EXPECT_EQ(a, b) << "fault schedule must be a pure function of (seed, opts)";
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  EXPECT_NE(DriveSchedule(1), DriveSchedule(2));
}

TEST(FaultInjectorTest, ProbabilitiesActuallyFire) {
  FaultInjectorOptions opts;
  opts.transient_error_p = 0.5;
  FaultInjector fi(opts);
  for (int i = 0; i < 200; ++i) fi.Decide(FaultOp::kAppend);
  EXPECT_GT(fi.stats().transient_errors.Get(), 0u) << fi.ToString();
  EXPECT_EQ(fi.stats().torn_appends.Get(), 0u);
}

TEST(FaultInjectorTest, ArmedFaultFiresExactlyOnceAtIndex) {
  FaultInjector fi;  // all probabilities zero: only the armed fault fires.
  fi.Arm(FaultOp::kRead, FaultClass::kTransientError, /*at_index=*/2);
  EXPECT_FALSE(fi.Decide(FaultOp::kRead).Any());
  EXPECT_FALSE(fi.Decide(FaultOp::kRead).Any());
  EXPECT_TRUE(fi.Decide(FaultOp::kRead).fail);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(fi.Decide(FaultOp::kRead).Any()) << "must disarm after firing";
  }
  EXPECT_EQ(fi.stats().Total(), 1u);
}

TEST(FaultInjectorTest, ArmNextTargetsOnlyItsOpType) {
  FaultInjector fi;
  fi.ArmNext(FaultOp::kFreeExtent, FaultClass::kTransientError);
  EXPECT_FALSE(fi.Decide(FaultOp::kAppend).Any());
  EXPECT_FALSE(fi.Decide(FaultOp::kRead).Any());
  EXPECT_TRUE(fi.Decide(FaultOp::kFreeExtent).fail);
  EXPECT_EQ(fi.OpCount(FaultOp::kFreeExtent), 1u);
}

// --- store-level semantics per fault class ------------------------------------

struct StoreFixture {
  StoreFixture() {
    store = std::make_unique<CloudStore>();
    stream = store->CreateStream("data");
    store->SetFaultInjector(&fi);
  }
  std::unique_ptr<CloudStore> store;
  cloud::StreamId stream = 0;
  FaultInjector fi;
};

TEST(CloudFaultTest, DefaultStoreReportsZeroInjectedFaults) {
  CloudStore store;  // no injector attached: the bench configuration.
  const auto s = store.CreateStream("s");
  ASSERT_TRUE(store.Append(s, "hello").ok());
  ASSERT_TRUE(store.Append(s, "world").ok());
  EXPECT_EQ(store.stats().injected_faults.Get(), 0u);
  EXPECT_EQ(store.stats().retries.Get(), 0u);
  EXPECT_NE(store.stats().ToString().find("injected_faults=0"),
            std::string::npos)
      << store.stats().ToString();
}

TEST(CloudFaultTest, TransientAppendFailsBareSucceedsUnderRetry) {
  StoreFixture f;
  // Bare call (a retries-disabled caller): the injected fault surfaces.
  f.fi.ArmNext(FaultOp::kAppend, FaultClass::kTransientError);
  EXPECT_TRUE(f.store->Append(f.stream, "rec").status().IsIOError());
  EXPECT_EQ(f.store->stats().injected_faults.Get(), 1u);

  // Same fault under the shared retry wrapper: absorbed.
  f.fi.ArmNext(FaultOp::kAppend, FaultClass::kTransientError);
  RetryOptions retry;
  retry.retries = &f.store->stats().retries;
  auto res = RetryResultWithBackoff(
      retry, [&] { return f.store->Append(f.stream, "rec"); });
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GT(f.store->stats().retries.Get(), 0u);
}

TEST(CloudFaultTest, LatencySpikeInflatesReportedLatency) {
  StoreFixture f;
  uint64_t base_us = 0;
  ASSERT_TRUE(f.store->Append(f.stream, "baseline", &base_us).ok());

  f.fi.ArmNext(FaultOp::kAppend, FaultClass::kLatencySpike);
  uint64_t spiked_us = 0;
  ASSERT_TRUE(f.store->Append(f.stream, "baseline", &spiked_us).ok());
  // The model's own latency may jitter between calls; the spike dominates.
  EXPECT_GE(spiked_us, f.fi.options().latency_spike_us);
  EXPECT_GT(spiked_us, base_us);
  EXPECT_EQ(f.fi.stats().latency_spikes.Get(), 1u);
}

TEST(CloudFaultTest, TornAppendIsInvisibleToTailReaders) {
  StoreFixture f;
  ASSERT_TRUE(f.store->Append(f.stream, "first").ok());
  f.fi.ArmNext(FaultOp::kAppend, FaultClass::kTornAppend);
  EXPECT_TRUE(f.store->Append(f.stream, "torn-victim").status().IsIOError());
  ASSERT_TRUE(f.store->Append(f.stream, "third").ok());

  // The torn record physically landed but fails its CRC: tailing skips it,
  // exactly as if it had never been durably written.
  auto tail = f.store->TailRecords(f.stream, cloud::PagePointer(), 100);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail.value().size(), 2u);
  EXPECT_EQ(tail.value()[0].second, "first");
  EXPECT_EQ(tail.value()[1].second, "third");
}

TEST(CloudFaultTest, CorruptReadKeepsDataIntactAndRetriesHeal) {
  StoreFixture f;
  auto ptr = f.store->Append(f.stream, "payload");
  ASSERT_TRUE(ptr.ok());

  // Bare read sees the injected checksum mismatch.
  f.fi.ArmNext(FaultOp::kRead, FaultClass::kCorruptRead);
  EXPECT_TRUE(f.store->Read(ptr.value()).status().IsCorruption());

  // A read-path retry policy (retry_corruption=true: the flip happened on
  // the wire) re-reads the intact record.
  f.fi.ArmNext(FaultOp::kRead, FaultClass::kCorruptRead);
  RetryOptions retry;
  retry.retry_corruption = true;
  auto res =
      RetryResultWithBackoff(retry, [&] { return f.store->Read(ptr.value()); });
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value(), "payload");
}

TEST(CloudFaultTest, ManifestGetFaultSurfacesAsIOError) {
  StoreFixture f;
  f.store->ManifestPut("route", "v1");
  f.fi.ArmNext(FaultOp::kManifestGet, FaultClass::kTransientError);
  EXPECT_TRUE(f.store->ManifestGet("route").status().IsIOError());
  EXPECT_EQ(f.store->ManifestGet("route").value(), "v1");
}

// --- WAL writer hardening -----------------------------------------------------

wal::WalRecord Mutation(bwtree::Lsn lsn, const std::string& key,
                        const std::string& value) {
  wal::WalRecord r;
  r.type = wal::WalRecord::Type::kMutation;
  r.tree_id = 1;
  r.page_id = 7;
  r.lsn = lsn;
  r.entry = {bwtree::DeltaOp::kUpsert, key, value};
  return r;
}

TEST(WalFaultTest, TransientFaultFailsWriterWithoutRetries) {
  StoreFixture f;
  wal::WalWriterOptions w;
  w.stream = f.stream;
  w.retry.max_attempts = 1;  // retries disabled.
  wal::WalWriter writer(f.store.get(), w);

  f.fi.ArmNext(FaultOp::kAppend, FaultClass::kTransientError);
  EXPECT_TRUE(writer.Append(Mutation(1, "a", "1")).IsIOError());

  // Nothing acked was dropped: the record stayed buffered and the next
  // flush (fault-free) publishes exactly one copy.
  ASSERT_TRUE(writer.Flush().ok());
  wal::WalReader reader(f.store.get(), f.stream);
  auto records = reader.Poll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].entry.key, "a");
}

TEST(WalFaultTest, TransientFaultAbsorbedWithRetries) {
  StoreFixture f;
  wal::WalWriterOptions w;
  w.stream = f.stream;
  wal::WalWriter writer(f.store.get(), w);

  f.fi.ArmNext(FaultOp::kAppend, FaultClass::kTransientError);
  EXPECT_TRUE(writer.Append(Mutation(1, "a", "1")).ok());
  EXPECT_GT(f.store->stats().retries.Get(), 0u);
  EXPECT_EQ(f.store->stats().retry_exhausted.Get(), 0u);
}

TEST(WalFaultTest, TornAppendRepairedByRetryWithoutDuplicates) {
  StoreFixture f;
  wal::WalWriterOptions w;
  w.stream = f.stream;
  wal::WalWriter writer(f.store.get(), w);

  ASSERT_TRUE(writer.Append(Mutation(1, "a", "1")).ok());
  f.fi.ArmNext(FaultOp::kAppend, FaultClass::kTornAppend);
  ASSERT_TRUE(writer.Append(Mutation(2, "b", "2")).ok());
  ASSERT_TRUE(writer.Append(Mutation(3, "c", "3")).ok());
  EXPECT_EQ(f.fi.stats().torn_appends.Get(), 1u);

  // The damaged batch copy fails its CRC and is skipped; the retried copy
  // is the only one a reader sees — no loss, no duplication.
  wal::WalReader reader(f.store.get(), f.stream);
  auto records = reader.Poll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 3u);
  EXPECT_EQ(records.value()[0].lsn, 1u);
  EXPECT_EQ(records.value()[1].lsn, 2u);
  EXPECT_EQ(records.value()[2].lsn, 3u);
}

TEST(WalFaultTest, TornAppendLosesBatchWithoutRetries) {
  StoreFixture f;
  wal::WalWriterOptions w;
  w.stream = f.stream;
  w.retry.max_attempts = 1;
  wal::WalWriter writer(f.store.get(), w);

  f.fi.ArmNext(FaultOp::kAppend, FaultClass::kTornAppend);
  // The append surfaces the tear instead of silently publishing garbage…
  EXPECT_TRUE(writer.Append(Mutation(1, "a", "1")).IsIOError());
  // …and until the writer flushes again, readers see nothing at all: a
  // crash in this window is the data-loss scenario the recovery matrix
  // pins down (RecoveryFaultMatrixTest).
  wal::WalReader reader(f.store.get(), f.stream);
  auto records = reader.Poll();
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records.value().empty());
}

// --- Bw-tree read path --------------------------------------------------------

struct TreeFixture {
  explicit TreeFixture(int max_attempts) {
    store = std::make_unique<CloudStore>();
    store->SetFaultInjector(&fi);
    bwtree::BwTreeOptions opts;
    opts.tree_id = 1;
    opts.base_stream = store->CreateStream("base");
    opts.delta_stream = store->CreateStream("delta");
    opts.read_cache = bwtree::ReadCacheMode::kNone;  // every Get hits storage.
    opts.retry.max_attempts = max_attempts;
    tree = std::make_unique<bwtree::BwTree>(store.get(), opts);
  }
  std::unique_ptr<CloudStore> store;
  FaultInjector fi;
  std::unique_ptr<bwtree::BwTree> tree;
};

TEST(BwTreeFaultTest, CorruptReadFailsGetWithoutRetries) {
  TreeFixture f(/*max_attempts=*/1);
  ASSERT_TRUE(f.tree->Upsert("k", "v").ok());
  f.fi.ArmNext(FaultOp::kRead, FaultClass::kCorruptRead);
  EXPECT_TRUE(f.tree->Get("k").status().IsCorruption());
}

TEST(BwTreeFaultTest, CorruptReadHealedByReadRetry) {
  TreeFixture f(/*max_attempts=*/4);
  ASSERT_TRUE(f.tree->Upsert("k", "v").ok());
  f.fi.ArmNext(FaultOp::kRead, FaultClass::kCorruptRead);
  auto got = f.tree->Get("k");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), "v");
  EXPECT_GT(f.store->stats().retries.Get(), 0u);
}

TEST(BwTreeFaultTest, TransientReadFaultHealedByRetry) {
  TreeFixture f(/*max_attempts=*/4);
  ASSERT_TRUE(f.tree->Upsert("k", "v").ok());
  f.fi.ArmNext(FaultOp::kRead, FaultClass::kTransientError);
  auto got = f.tree->Get("k");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), "v");
}

// --- RO node degradation ------------------------------------------------------

struct RoFixture {
  explicit RoFixture(int ro_max_attempts) {
    store = std::make_unique<CloudStore>();
    store->SetFaultInjector(&fi);
    rw_opts.tree.tree_id = 1;
    rw_opts.tree.base_stream = store->CreateStream("base");
    rw_opts.tree.delta_stream = store->CreateStream("delta");
    rw_opts.wal.stream = store->CreateStream("wal");
    rw = std::make_unique<replication::RwNode>(store.get(), rw_opts);
    ro_opts.wal_stream = rw_opts.wal.stream;
    ro_opts.retry.max_attempts = ro_max_attempts;
    ro = std::make_unique<replication::RoNode>(store.get(), ro_opts);
  }
  std::unique_ptr<CloudStore> store;
  FaultInjector fi;
  replication::RwNodeOptions rw_opts;
  replication::RoNodeOptions ro_opts;
  std::unique_ptr<replication::RwNode> rw;
  std::unique_ptr<replication::RoNode> ro;
};

TEST(RoFaultTest, TailFaultDegradesToStaleReadThenCatchesUp) {
  RoFixture f(/*ro_max_attempts=*/1);  // degradation path, no retries.
  ASSERT_TRUE(f.rw->Put("k", "v1").ok());
  EXPECT_EQ(f.ro->Get(1, "k").value(), "v1");

  ASSERT_TRUE(f.rw->Put("k", "v2").ok());
  f.fi.ArmNext(FaultOp::kTail, FaultClass::kTransientError);
  // The poll budget runs dry: the node serves its last consistent state
  // instead of failing the read, and records the degradation.
  EXPECT_EQ(f.ro->Get(1, "k").value(), "v1");
  EXPECT_EQ(f.ro->stats().poll_degraded.Get(), 1u);

  // Substrate healthy again: the node catches up on the next poll.
  EXPECT_EQ(f.ro->Get(1, "k").value(), "v2");
}

TEST(RoFaultTest, TailFaultAbsorbedByRetryStaysConsistent) {
  RoFixture f(/*ro_max_attempts=*/4);
  ASSERT_TRUE(f.rw->Put("k", "v1").ok());
  EXPECT_EQ(f.ro->Get(1, "k").value(), "v1");

  ASSERT_TRUE(f.rw->Put("k", "v2").ok());
  f.fi.ArmNext(FaultOp::kTail, FaultClass::kTransientError);
  EXPECT_EQ(f.ro->Get(1, "k").value(), "v2");
  EXPECT_EQ(f.ro->stats().poll_degraded.Get(), 0u);
  EXPECT_GT(f.store->stats().retries.Get(), 0u);
}

// --- GC deferral --------------------------------------------------------------

struct GcFixture {
  explicit GcFixture(int max_attempts) {
    cloud::CloudStoreOptions store_opts;
    store_opts.extent_capacity = 256;  // a few records seal an extent.
    store = std::make_unique<CloudStore>(store_opts);
    store->SetFaultInjector(&fi);
    stream = store->CreateStream("ttl-data");
    tracker = std::make_unique<gc::ExtentUsageTracker>(&clock);
    store->SetObserver(tracker.get());

    // The resolver is never consulted: TTL expiry frees extents in place.
    tree_opts.tree_id = 99;
    tree_opts.base_stream = store->CreateStream("unused-base");
    tree_opts.delta_stream = store->CreateStream("unused-delta");
    tree = std::make_unique<bwtree::BwTree>(store.get(), tree_opts);
    resolver = std::make_unique<gc::SingleTreeResolver>(tree.get());

    gc::ReclaimOptions opts;
    opts.ttl_us = 1'000;
    opts.retry.max_attempts = max_attempts;
    reclaimer = std::make_unique<gc::SpaceReclaimer>(
        store.get(), resolver.get(), &policy, tracker.get(), opts);
  }

  void FillAndExpire() {
    const std::string payload(100, 'x');
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(store->Append(stream, payload).ok());
    }
    ASSERT_GE(store->SealedExtentStats(stream).size(), 2u);
    clock.AdvanceUs(10'000'000);  // every sealed extent is past its TTL.
  }

  cloud::ManualTimeSource clock;
  std::unique_ptr<CloudStore> store;
  FaultInjector fi;
  cloud::StreamId stream = 0;
  std::unique_ptr<gc::ExtentUsageTracker> tracker;
  bwtree::BwTreeOptions tree_opts;
  std::unique_ptr<bwtree::BwTree> tree;
  std::unique_ptr<gc::SingleTreeResolver> resolver;
  gc::FifoPolicy policy;
  std::unique_ptr<gc::SpaceReclaimer> reclaimer;
};

TEST(GcFaultTest, FreeExtentFaultDefersVictimToNextCycle) {
  GcFixture f(/*max_attempts=*/1);
  f.FillAndExpire();
  const size_t sealed = f.store->SealedExtentStats(f.stream).size();

  f.fi.ArmNext(FaultOp::kFreeExtent, FaultClass::kTransientError);
  auto cycle = f.reclaimer->RunCycle(f.stream, 100);
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  EXPECT_EQ(cycle.value().extents_deferred, 1u);
  EXPECT_EQ(cycle.value().extents_expired, sealed - 1);
  // The deferred extent survived this cycle…
  EXPECT_EQ(f.store->SealedExtentStats(f.stream).size(), 1u);

  // …and the next (fault-free) cycle reclaims it.
  auto next = f.reclaimer->RunCycle(f.stream, 100);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().extents_expired, 1u);
  EXPECT_EQ(next.value().extents_deferred, 0u);
  EXPECT_TRUE(f.store->SealedExtentStats(f.stream).empty());
}

TEST(GcFaultTest, FreeExtentFaultAbsorbedByRetry) {
  GcFixture f(/*max_attempts=*/4);
  f.FillAndExpire();
  const size_t sealed = f.store->SealedExtentStats(f.stream).size();

  f.fi.ArmNext(FaultOp::kFreeExtent, FaultClass::kTransientError);
  auto cycle = f.reclaimer->RunCycle(f.stream, 100);
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  EXPECT_EQ(cycle.value().extents_deferred, 0u);
  EXPECT_EQ(cycle.value().extents_expired, sealed);
  EXPECT_GT(f.store->stats().retries.Get(), 0u);
  EXPECT_TRUE(f.store->SealedExtentStats(f.stream).empty());
}

// --- probability-driven soak: the whole stack rides out a noisy substrate ----

TEST(FaultSoakTest, RwRoPipelineSurvivesProbabilisticFaults) {
  FaultInjectorOptions fopts;
  fopts.seed = 0xB63B63;
  fopts.transient_error_p = 0.02;
  fopts.corrupt_read_p = 0.02;
  fopts.torn_append_p = 0.01;
  FaultInjector fi(fopts);

  auto store = std::make_unique<CloudStore>();
  store->SetFaultInjector(&fi);
  replication::RwNodeOptions rw_opts;
  rw_opts.tree.tree_id = 1;
  rw_opts.tree.base_stream = store->CreateStream("base");
  rw_opts.tree.delta_stream = store->CreateStream("delta");
  rw_opts.wal.stream = store->CreateStream("wal");
  rw_opts.flush_group_pages = 8;
  replication::RwNode rw(store.get(), rw_opts);
  replication::RoNodeOptions ro_opts;
  ro_opts.wal_stream = rw_opts.wal.stream;
  replication::RoNode ro(store.get(), ro_opts);

  // Default 4-attempt budgets make exhaustion (0.02^4) vanishingly rare;
  // the run must stay strongly consistent end to end.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(rw.Put(Key(i), "v" + std::to_string(i)).ok())
        << "i=" << i << " " << fi.ToString();
    ASSERT_EQ(ro.Get(1, Key(i)).value(), "v" + std::to_string(i))
        << "i=" << i << " " << fi.ToString();
  }
  EXPECT_GT(store->stats().injected_faults.Get(), 0u) << fi.ToString();
  EXPECT_EQ(store->stats().retry_exhausted.Get(), 0u) << fi.ToString();
  EXPECT_EQ(ro.stats().poll_degraded.Get(), 0u) << fi.ToString();
}

// --- combined fault + overload matrix (ISSUE 5 satellite) ---------------------

// A dead substrate under concurrent write pressure must *shed*, not
// deadlock or retry-spin: the WAL backlog watermark turns Puts into
// Overloaded at the door, the circuit breaker turns retry exhaustion into
// fail-fast, reads keep serving from memory, and once the substrate heals
// the breaker closes and writes resume. Runs multithreaded so the asan/
// tsan presets police the whole shed path.
TEST(FaultOverloadMatrixTest, SaturatedWritesShedFailFastAndRecover) {
  cloud::ManualTimeSource clock;
  cloud::CloudStoreOptions sopts;
  sopts.breaker.enabled = true;
  sopts.breaker.failure_threshold = 4;
  sopts.breaker.open_cooldown_us = 200'000;
  sopts.time_source = &clock;
  auto store = std::make_unique<CloudStore>(sopts);

  replication::RwNodeOptions rw_opts;
  rw_opts.tree.tree_id = 1;
  rw_opts.tree.base_stream = store->CreateStream("base");
  rw_opts.tree.delta_stream = store->CreateStream("delta");
  rw_opts.wal.stream = store->CreateStream("wal");
  rw_opts.wal_backlog_watermark = 16;
  replication::RwNode rw(store.get(), rw_opts);

  // Warm keys the readers will hold onto through the outage.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(rw.Put(Key(i), "warm").ok());
  }

  FaultInjectorOptions fopts;
  fopts.transient_error_p = 1.0;  // substrate fully down.
  FaultInjector fi(fopts);
  store->SetFaultInjector(&fi);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 60;
  std::atomic<uint64_t> ok{0}, overloaded{0}, io_error{0}, other{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Status s = rw.Put(Key(1000 + t * kOpsPerThread + i), "storm");
        if (s.ok()) {
          ok.fetch_add(1);
        } else if (s.IsOverloaded()) {
          overloaded.fetch_add(1);
        } else if (s.IsIOError()) {
          io_error.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
        // Reads are never shed: warm keys stay served from memory.
        EXPECT_EQ(rw.Get(Key(i % 32)).value(), "warm");
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(other.load(), 0u)
      << "saturation may only produce OK/Overloaded/IOError";
  EXPECT_GT(overloaded.load(), 0u) << "the watermark must shed, not queue";
  EXPECT_GT(rw.writes_shed(), 0u);
  EXPECT_GE(store->breaker().trips(), 1u)
      << "repeated retry exhaustion must trip the breaker";
  EXPECT_GT(store->breaker().rejected(), 0u)
      << "an open breaker must fail fast instead of burning retry budgets";

  // Heal: faults stop, the cooldown passes, probes close the breaker, the
  // backlog drains, and writes are accepted again.
  store->SetFaultInjector(nullptr);
  clock.AdvanceUs(300'000);
  // The first successful batch append is a half-open probe success and
  // clears the backlog (and with it the watermark).
  ASSERT_TRUE(rw.wal_writer()->Flush().ok());
  EXPECT_EQ(rw.wal_writer()->BufferedRecords(), 0u);
  for (int i = 0; store->breaker().state() != CircuitBreaker::State::kClosed;
       ++i) {
    ASSERT_LT(i, 100) << "breaker failed to close against a healthy store";
    BG3_IGNORE_STATUS(rw.Put(Key(5000 + i), "probe"));
  }
  EXPECT_TRUE(rw.Put(Key(9000), "after-recovery").ok());
  EXPECT_EQ(rw.Get(Key(9000)).value(), "after-recovery");
}

}  // namespace
}  // namespace bg3
