// Property-based space-reclamation tests: arbitrary churn interleaved with
// reclamation cycles must never lose or corrupt data, across every policy.
// Reads go through the zero-cache path, so correctness is checked against
// the *storage images* that GC relocates — not the in-memory state.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/random.h"
#include "gc/policy.h"
#include "gc/space_reclaimer.h"

namespace bg3::gc {
namespace {

enum class PolicyKind { kFifo, kDirtyRatio, kWorkloadAware, kHybrid };

struct GcFuzzParam {
  PolicyKind policy;
  uint64_t seed;
  size_t extent_capacity;
  uint32_t consolidate_threshold;
};

std::string ParamName(const testing::TestParamInfo<GcFuzzParam>& info) {
  const char* names[] = {"fifo", "dirty", "aware", "hybrid"};
  return std::string(names[static_cast<int>(info.param.policy)]) + "_seed" +
         std::to_string(info.param.seed) + "_ext" +
         std::to_string(info.param.extent_capacity) + "_cons" +
         std::to_string(info.param.consolidate_threshold);
}

std::unique_ptr<GcPolicy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>();
    case PolicyKind::kDirtyRatio:
      return std::make_unique<DirtyRatioPolicy>(0.01);
    case PolicyKind::kWorkloadAware:
      return std::make_unique<WorkloadAwarePolicy>(0.01);
    case PolicyKind::kHybrid:
      return std::make_unique<HybridTtlGradientPolicy>(1'000'000, 0.01);
  }
  return nullptr;
}

class GcFuzzTest : public testing::TestWithParam<GcFuzzParam> {};

TEST_P(GcFuzzTest, ChurnPlusReclamationMatchesModel) {
  const GcFuzzParam& p = GetParam();
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = p.extent_capacity;
  cloud::CloudStore store(copts);
  cloud::ManualTimeSource clock;
  ExtentUsageTracker tracker(&clock);
  store.SetObserver(&tracker);

  bwtree::BwTreeOptions topts;
  topts.consolidate_threshold = p.consolidate_threshold;
  topts.max_leaf_entries = 32;
  topts.read_cache = bwtree::ReadCacheMode::kNone;  // storage is the truth
  topts.base_stream = store.CreateStream("base");
  topts.delta_stream = store.CreateStream("delta");
  bwtree::BwTree tree(&store, topts);

  auto policy = MakePolicy(p.policy);
  SingleTreeResolver resolver(&tree);
  ReclaimOptions ropts;
  ropts.target_dead_ratio = 0.01;
  SpaceReclaimer reclaimer(&store, &resolver, policy.get(), &tracker, ropts);

  std::map<std::string, std::string> model;
  Random rng(p.seed);
  for (int i = 0; i < 3000; ++i) {
    clock.AdvanceUs(50);
    const std::string key = "k" + std::to_string(rng.Uniform(150));
    const int action = static_cast<int>(rng.Uniform(20));
    if (action < 12) {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(tree.Upsert(key, value).ok());
      model[key] = value;
    } else if (action < 15) {
      ASSERT_TRUE(tree.Delete(key).ok());
      model.erase(key);
    } else if (action < 18) {
      auto got = tree.Get(key);
      auto mit = model.find(key);
      if (mit == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key << " @" << i;
      } else {
        ASSERT_TRUE(got.ok()) << key << " @" << i;
        EXPECT_EQ(got.value(), mit->second) << key << " @" << i;
      }
    } else {
      // Reclamation cycle on a random stream.
      const cloud::StreamId stream = rng.Uniform(2) == 0 ? 0 : 1;
      ASSERT_TRUE(reclaimer.RunCycle(stream, 4).ok()) << "@" << i;
    }
  }
  // Drain reclamation, then verify the full model through storage reads.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(reclaimer.RunCycle(0, 8).ok());
    ASSERT_TRUE(reclaimer.RunCycle(1, 8).ok());
  }
  for (const auto& [key, value] : model) {
    auto got = tree.Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got.value(), value) << key;
  }
  // Reclamation must actually have reclaimed something over this much churn.
  EXPECT_GT(store.stats().extents_freed.Get(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GcFuzzTest,
    testing::Values(GcFuzzParam{PolicyKind::kFifo, 1, 1024, 4},
                    GcFuzzParam{PolicyKind::kDirtyRatio, 2, 1024, 4},
                    GcFuzzParam{PolicyKind::kWorkloadAware, 3, 1024, 4},
                    GcFuzzParam{PolicyKind::kHybrid, 4, 1024, 4},
                    GcFuzzParam{PolicyKind::kDirtyRatio, 5, 4096, 10},
                    GcFuzzParam{PolicyKind::kWorkloadAware, 6, 256, 2}),
    ParamName);

}  // namespace
}  // namespace bg3::gc
