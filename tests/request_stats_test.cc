// Per-request causal observability end to end (DESIGN.md §5.8): a traced
// k-hop query produces a `/tracez` span tree crossing query -> api ->
// forest -> bwtree -> cloud, its OpStats cloud counters reconcile exactly
// with the store's IoStats delta, the finished request folds nonzero
// bg3.cost.* attribution by layer and class, and the satellite OpContext
// fixes (WithTimeout saturation, trace-tagged deadline errors) hold.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/cloud_store.h"
#include "common/cost_model.h"
#include "common/metrics_registry.h"
#include "common/op_context.h"
#include "common/trace.h"
#include "core/graph_db.h"
#include "query/query.h"
#include "wal/writer.h"

namespace bg3 {
namespace {

constexpr graph::EdgeType kFollows = 1;

// Second dot-component of a span name ("bg3.forest.lookup" -> "forest").
std::string LayerOf(const char* name) {
  const std::string s(name);
  const size_t first = s.find('.');
  if (first == std::string::npos) return s;
  const size_t second = s.find('.', first + 1);
  return s.substr(first + 1, second == std::string::npos
                                 ? std::string::npos
                                 : second - first - 1);
}

uint64_t CounterOrZero(const MetricsRegistry::Snapshot& snap,
                       const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

class RequestStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::Trace::Reset();
    trace::Trace::SetSlowOpThresholdNs(0);  // retain every traced request
  }
  void TearDown() override {
    trace::Trace::SetSlowOpThresholdNs(0);
    trace::Trace::Reset();
    CostAccounting::Default().SetModel(CostModelOptions{});
  }
};

// Builds a 2-hop fan-out graph, evicts every page so the traced query must
// fault them back from the cloud store, and runs the query under a traced
// context with an OpStats sink.
TEST_F(RequestStatsTest, TracedKHopQueryEndToEnd) {
  cloud::CloudStore store;
  core::GraphDBOptions opts;
  opts.forest.tree_options.max_leaf_entries = 8;
  core::GraphDB db(&store, opts);

  // 1 -> {2..17} -> {100+i*4 .. 103+i*4}: enough edges for multi-leaf pages.
  for (graph::VertexId mid = 2; mid <= 17; ++mid) {
    ASSERT_TRUE(db.AddEdge(1, kFollows, mid, "props", 1).ok());
    for (graph::VertexId j = 0; j < 4; ++j) {
      ASSERT_TRUE(
          db.AddEdge(mid, kFollows, 100 + mid * 4 + j, "props", 1).ok());
    }
  }
  // Evict everything resident so the query's reads hit the cloud store.
  std::vector<bwtree::BwTree*> trees;
  db.forest()->AppendTrees(&trees);
  trees.push_back(db.vertex_tree());
  for (bwtree::BwTree* t : trees) t->EvictColdPages(0);

  // Nonzero per-GB read pricing so the (read-only) request costs dollars.
  CostModelOptions pricing;
  pricing.usd_per_read_op = 1e-3;
  CostAccounting::Default().SetModel(pricing);

  OpStats stats;
  OpContext ctx = OpContext::Traced("khop_test", &stats);

  const auto cost_before = MetricsRegistry::Default().TakeSnapshot();
  const uint64_t reads_before = store.stats().read_ops.Get();
  const uint64_t read_bytes_before = store.stats().read_bytes.Get();

  auto result = query::Query(&db)
                    .V(1)
                    .Out(kFollows)
                    .Out(kFollows)
                    .Dedup()
                    .Context(&ctx)
                    .Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().empty());

  // --- OpStats vs IoStats reconciliation (single-threaded: exact) ---------
  const uint64_t reads_delta = store.stats().read_ops.Get() - reads_before;
  const uint64_t read_bytes_delta =
      store.stats().read_bytes.Get() - read_bytes_before;
  ASSERT_GT(reads_delta, 0u) << "eviction did not force cloud reads";
  EXPECT_EQ(stats.CloudReadOps(), reads_delta);
  EXPECT_EQ(stats.CloudReadBytes(), read_bytes_delta);
  // Reads fault leaves back in; the bwtree layer must own them.
  EXPECT_GT(
      stats.layers[static_cast<size_t>(OpLayer::kBwtree)].cloud_read_ops.load(
          std::memory_order_relaxed),
      0u);
  EXPECT_GT(stats.cache_misses.load(std::memory_order_relaxed), 0u);

  // --- span tree: >= 4 layers, single root, closed parent links -----------
  const std::vector<trace::SlowTrace> retained =
      trace::Trace::RetainedTraces();
  const trace::SlowTrace* mine = nullptr;
  for (const trace::SlowTrace& t : retained) {
    if (t.trace_id == ctx.trace_id) mine = &t;
  }
  ASSERT_NE(mine, nullptr) << "traced request not retained (threshold 0)";
  EXPECT_EQ(mine->root_name, "bg3.query.execute");
  EXPECT_EQ(mine->workload_class, "khop_test");

  std::set<std::string> layers;
  std::set<uint64_t> span_ids;
  size_t roots = 0;
  for (const trace::SpanRecord& s : mine->spans) {
    layers.insert(LayerOf(s.name));
    span_ids.insert(s.span_id);
    if (s.parent_id == 0) ++roots;
  }
  EXPECT_EQ(roots, 1u) << "exactly one root span per trace";
  for (const trace::SpanRecord& s : mine->spans) {
    if (s.parent_id != 0) {
      EXPECT_TRUE(span_ids.count(s.parent_id))
          << s.name << " has dangling parent " << s.parent_id;
    }
  }
  EXPECT_GE(layers.size(), 4u) << "layers: "
                               << ::testing::PrintToString(layers);
  EXPECT_TRUE(layers.count("query"));
  EXPECT_TRUE(layers.count("forest"));
  EXPECT_TRUE(layers.count("bwtree"));
  EXPECT_TRUE(layers.count("cloud"));

  // --- cost attribution folded at root end --------------------------------
  const auto cost_after = MetricsRegistry::Default().TakeSnapshot();
  EXPECT_GT(CounterOrZero(cost_after, "bg3.cost.layer.bwtree.nanousd"),
            CounterOrZero(cost_before, "bg3.cost.layer.bwtree.nanousd"));
  EXPECT_GT(CounterOrZero(cost_after, "bg3.cost.class.khop_test.nanousd"),
            CounterOrZero(cost_before, "bg3.cost.class.khop_test.nanousd"));
  EXPECT_GT(CounterOrZero(cost_after, "bg3.cost.total_nanousd"),
            CounterOrZero(cost_before, "bg3.cost.total_nanousd"));
  EXPECT_GE(CounterOrZero(cost_after, "bg3.cost.requests"),
            CounterOrZero(cost_before, "bg3.cost.requests") + 1);

  // The retained trace also renders into /tracez.
  const std::string tracez = trace::Trace::RenderTracez();
  EXPECT_NE(tracez.find("bg3.query.execute"), std::string::npos);
  EXPECT_NE(tracez.find("khop_test"), std::string::npos);
}

// WAL appends are billed to the appending request at enqueue, under the wal
// layer, even though the group flush may happen later.
TEST_F(RequestStatsTest, WalAppendsBilledToRequest) {
  cloud::CloudStore store;
  wal::WalWriterOptions wopts;
  wopts.stream = store.CreateStream("wal-test");
  wopts.group_size = 4;
  wal::WalWriter writer(&store, wopts);

  OpStats stats;
  OpContext ctx = OpContext::Traced("wal_test", &stats);
  for (int i = 0; i < 3; ++i) {
    wal::WalRecord rec;
    rec.tree_id = 1;
    rec.page_id = 1;
    rec.lsn = static_cast<uint64_t>(i + 1);
    rec.entry.key = "k" + std::to_string(i);
    rec.entry.value = "payload";
    ASSERT_TRUE(writer.Append(std::move(rec), &ctx).ok());
  }
  EXPECT_EQ(stats.wal_appends.load(std::memory_order_relaxed), 3u);
  EXPECT_GT(stats.wal_append_bytes.load(std::memory_order_relaxed), 0u);
  // group_size 4 not reached: no flush yet, so no cloud append was billed.
  EXPECT_EQ(stats.CloudAppendOps(), 0u);

  ASSERT_TRUE(writer.Flush(&ctx).ok());
  // The flush's batch append lands under the wal layer.
  EXPECT_EQ(stats.CloudAppendOps(), 1u);
  EXPECT_GT(
      stats.layers[static_cast<size_t>(OpLayer::kWal)].cloud_append_ops.load(
          std::memory_order_relaxed),
      0u);
}

// Satellite (a): WithTimeout must saturate, not wrap, on huge timeouts.
TEST(OpContextTimeoutTest, WithTimeoutSaturatesInsteadOfWrapping) {
  ManualTimeSource clock;
  clock.SetUs(1'000'000);
  const OpContext forever =
      OpContext::WithTimeout(&clock, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(forever.deadline_us, std::numeric_limits<uint64_t>::max());
  EXPECT_FALSE(forever.Expired());
  EXPECT_TRUE(ValidateOpContext(&forever).ok());

  // One microsecond under the wrap point still saturates.
  const OpContext nearly = OpContext::WithTimeout(
      &clock, std::numeric_limits<uint64_t>::max() - clock.NowUs() + 1);
  EXPECT_EQ(nearly.deadline_us, std::numeric_limits<uint64_t>::max());

  // Normal timeouts are unaffected.
  const OpContext normal = OpContext::WithTimeout(&clock, 500);
  EXPECT_EQ(normal.deadline_us, clock.NowUs() + 500);
}

// Satellite (b): deadline errors from traced requests carry the trace id
// and workload class, joinable against /tracez.
TEST(OpContextTimeoutTest, DeadlineErrorsCarryTraceIdentity) {
  ManualTimeSource clock;
  clock.SetUs(100);
  OpContext ctx = OpContext::Traced("deadline_class", nullptr);
  ctx.clock = &clock;
  ctx.deadline_us = 50;  // already past

  const Status s = CheckDeadline(&ctx, "unit test");
  ASSERT_TRUE(s.IsDeadlineExceeded());
  EXPECT_NE(s.ToString().find("trace="), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("class=deadline_class"), std::string::npos);

  char expect[64];
  std::snprintf(expect, sizeof(expect), "%016llx",
                static_cast<unsigned long long>(ctx.trace_id));
  EXPECT_NE(s.ToString().find(expect), std::string::npos)
      << "message must carry the exact trace id";

  // Untraced contexts keep the old message shape (no identity suffix).
  OpContext plain;
  plain.clock = &clock;
  plain.deadline_us = 50;
  const Status s2 = CheckDeadline(&plain, "unit test");
  ASSERT_TRUE(s2.IsDeadlineExceeded());
  EXPECT_EQ(s2.ToString().find("trace="), std::string::npos);
}

// Traced writes attribute admission queueing and API-layer work; the
// request counter moves exactly once per root op.
TEST_F(RequestStatsTest, TracedWriteFoldsOneRequest) {
  cloud::CloudStore store;
  core::GraphDBOptions opts;
  core::GraphDB db(&store, opts);

  OpStats stats;
  OpContext ctx = OpContext::Traced("write_test", &stats);
  const auto before = MetricsRegistry::Default().TakeSnapshot();
  ASSERT_TRUE(db.AddEdge(1, kFollows, 2, "p", 1, &ctx).ok());
  const auto after = MetricsRegistry::Default().TakeSnapshot();
  EXPECT_EQ(CounterOrZero(after, "bg3.cost.requests") -
                CounterOrZero(before, "bg3.cost.requests"),
            1u);

  const std::vector<trace::SlowTrace> retained =
      trace::Trace::RetainedTraces();
  bool found = false;
  for (const trace::SlowTrace& t : retained) {
    if (t.trace_id == ctx.trace_id) {
      found = true;
      EXPECT_EQ(t.root_name, "bg3.api.add_edge");
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace bg3
