// Property-based LSM tests: randomized workloads against a std::map
// reference model, swept across memtable sizes and compaction triggers.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "cloud/cloud_store.h"
#include "common/random.h"
#include "lsm/lsm_db.h"

namespace bg3::lsm {
namespace {

struct LsmParam {
  size_t memtable_bytes;
  int l0_trigger;
  uint64_t level_base_bytes;
};

std::string ParamName(const testing::TestParamInfo<LsmParam>& info) {
  return "mem" + std::to_string(info.param.memtable_bytes) + "_l0t" +
         std::to_string(info.param.l0_trigger) + "_base" +
         std::to_string(info.param.level_base_bytes);
}

class LsmModelTest : public testing::TestWithParam<LsmParam> {
 protected:
  void SetUp() override {
    store_ = std::make_unique<cloud::CloudStore>();
    LsmOptions opts;
    opts.stream = store_->CreateStream("lsm");
    opts.memtable_bytes = GetParam().memtable_bytes;
    opts.compaction.l0_compaction_trigger = GetParam().l0_trigger;
    opts.compaction.level_base_bytes = GetParam().level_base_bytes;
    opts.compaction.sstable_target_bytes = 2048;
    opts.compaction.block_bytes = 256;
    db_ = std::make_unique<LsmDb>(store_.get(), opts);
  }
  std::unique_ptr<cloud::CloudStore> store_;
  std::unique_ptr<LsmDb> db_;
};

TEST_P(LsmModelTest, RandomOpsMatchReferenceModel) {
  std::map<std::string, std::string> model;
  Random rng(GetParam().memtable_bytes + GetParam().l0_trigger);
  for (int i = 0; i < 4000; ++i) {
    const std::string key = "key" + std::to_string(rng.Uniform(300));
    const int action = static_cast<int>(rng.Uniform(10));
    if (action < 6) {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(db_->Put(key, value).ok());
      model[key] = value;
    } else if (action < 8) {
      ASSERT_TRUE(db_->Delete(key).ok());
      model.erase(key);
    } else {
      auto got = db_->Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key;
        EXPECT_EQ(got.value(), it->second);
      }
    }
  }
  // Final sweep: every model key readable, scan matches.
  for (const auto& [key, value] : model) {
    EXPECT_EQ(db_->Get(key).value(), value);
  }
  std::vector<KvRecord> out;
  ASSERT_TRUE(db_->Scan("", "", 1u << 20, &out).ok());
  ASSERT_EQ(out.size(), model.size());
  auto mit = model.begin();
  for (const KvRecord& r : out) {
    EXPECT_EQ(r.key, mit->first);
    EXPECT_EQ(r.value, mit->second);
    ++mit;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LsmModelTest,
    testing::Values(LsmParam{512, 2, 2048}, LsmParam{2048, 2, 4096},
                    LsmParam{2048, 4, 8192}, LsmParam{8192, 3, 16384},
                    LsmParam{1024, 1, 2048}),
    ParamName);

}  // namespace
}  // namespace bg3::lsm
