// Multi-threaded stress tests for the concurrent storage structures: forest
// upserts + scans + GC relocation + cold-page eviction all running at once,
// so TSan builds (-DBG3_SANITIZE=thread) have something to bite on, plus
// death tests proving the debug invariant checkers fire on corrupted state.
//
// Scales are kept moderate: TSan multiplies runtime ~10x and CI runners may
// be single-core, so each test targets hundreds of operations per thread,
// not millions. The point is interleaving coverage, not throughput.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bwtree/bwtree.h"
#include "bwtree/mapping_table.h"
#include "cloud/cloud_store.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/random.h"
#include "forest/forest.h"
#include "test_seed.h"
#include "gc/extent_usage.h"
#include "gc/policy.h"
#include "gc/space_reclaimer.h"

namespace bg3 {
namespace {

std::string SortKey(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "s%06d", i);
  return buf;
}

/// Routes GC relocations to whichever tree of the forest owns the record.
class ForestResolver : public gc::TreeResolver {
 public:
  explicit ForestResolver(forest::BwTreeForest* f) : forest_(f) {}
  bwtree::BwTree* Resolve(bwtree::TreeId id) override {
    return forest_->ResolveTree(id);
  }

 private:
  forest::BwTreeForest* const forest_;
};

struct StressFixture {
  explicit StressFixture(forest::ForestOptions fopts) {
    cloud::CloudStoreOptions copts;
    copts.extent_capacity = 1 << 12;  // small extents -> GC has victims
    store = std::make_unique<cloud::CloudStore>(copts);
    tracker = std::make_unique<gc::ExtentUsageTracker>(&clock);
    store->SetObserver(tracker.get());
    fopts.tree_options.base_stream = store->CreateStream("base");
    fopts.tree_options.delta_stream = store->CreateStream("delta");
    fopts.tree_options.consolidate_threshold = 4;
    forest = std::make_unique<forest::BwTreeForest>(store.get(), fopts);
    resolver = std::make_unique<ForestResolver>(forest.get());
    policy = std::make_unique<gc::DirtyRatioPolicy>(0.01);
    gc::ReclaimOptions ropts;
    ropts.target_dead_ratio = 0.01;
    reclaimer = std::make_unique<gc::SpaceReclaimer>(
        store.get(), resolver.get(), policy.get(), tracker.get(), ropts);
  }

  cloud::ManualTimeSource clock;
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<gc::ExtentUsageTracker> tracker;
  std::unique_ptr<forest::BwTreeForest> forest;
  std::unique_ptr<ForestResolver> resolver;
  std::unique_ptr<gc::DirtyRatioPolicy> policy;
  std::unique_ptr<gc::SpaceReclaimer> reclaimer;
};

// Writers churn owner lists (forcing split-outs via the threshold), a reader
// does point gets + owner scans, and the driver thread runs GC relocation
// cycles plus cold-page eviction — the full §3.2/§3.3 concurrency surface.
TEST(ForestStressTest, ConcurrentUpsertScanDeleteWithGcAndEviction) {
  forest::ForestOptions fopts;
  fopts.split_out_threshold = 16;
  fopts.init_tree_capacity = 1 << 20;  // evictions exercised separately
  fopts.owner_shards = 4;
  StressFixture f(fopts);

  constexpr int kWriters = 3;
  constexpr int kOwnersPerWriter = 4;
  constexpr int kOpsPerWriter = 300;
  // Per-writer key/owner choices are drawn from seeded RNG streams so the
  // op mix (not the thread interleaving) replays from the printed seed.
  const uint64_t seed = test::AnnouncedSeed(
      "ForestStressTest.ConcurrentUpsertScanDeleteWithGcAndEviction", 0x57E55);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&f, &failures, seed, w] {
      Random rng(seed ^ (0x9E3779B9u * (w + 1)));
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const forest::OwnerId owner =
            1 + w * kOwnersPerWriter +
            static_cast<forest::OwnerId>(rng.Uniform(kOwnersPerWriter));
        const std::string key =
            SortKey(static_cast<int>(rng.Uniform(40)));  // churn -> dead records
        if (!f.forest->Upsert(owner, key, "v" + std::to_string(i)).ok()) {
          failures.fetch_add(1);
        }
        if (rng.Uniform(7) == 0 && !f.forest->Delete(owner, key).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&f, &failures, &stop] {
    uint64_t reads = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const forest::OwnerId owner = 1 + (reads % (kWriters * kOwnersPerWriter));
      (void)f.forest->Get(owner, SortKey(static_cast<int>(reads % 40)));
      std::vector<bwtree::Entry> out;
      if (!f.forest->ScanOwner(owner, "", 10, &out).ok()) {
        failures.fetch_add(1);
      }
      ++reads;
    }
  });

  // Driver: advance the clock and interleave GC + eviction with the traffic.
  for (int cycle = 0; cycle < 20; ++cycle) {
    f.clock.AdvanceUs(1000);
    auto r = f.reclaimer->RunCycle(/*stream=*/0, /*max_extents=*/2);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    BG3_IGNORE_STATUS(f.forest->EvictToBudget(/*budget_bytes=*/16 << 10));
    std::this_thread::yield();
  }

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(f.forest->stats().split_outs.Get(), 0u);
  f.forest->CheckInvariants();

  // Post-quiesce: every owner's data must still be readable and scannable.
  for (int w = 0; w < kWriters; ++w) {
    for (int o = 0; o < kOwnersPerWriter; ++o) {
      const forest::OwnerId owner = 1 + w * kOwnersPerWriter + o;
      std::vector<bwtree::Entry> out;
      ASSERT_TRUE(f.forest->ScanOwner(owner, "", 1000, &out).ok());
    }
  }
}

// Regression for the INIT-capacity eviction scan race: MaybeEvictFromInit
// used to read OwnerState::count and OwnerState::tree under only the shard
// lock while concurrent writers mutated both under the owner lock. A tiny
// INIT capacity makes every writer trigger the eviction scan while the
// others are mid-upsert; under TSan the old code reports within a few
// iterations.
TEST(ForestStressTest, EvictionScanRacesWithConcurrentUpserts) {
  forest::ForestOptions fopts;
  fopts.split_out_threshold = 1u << 30;  // eviction is the only split path
  fopts.init_tree_capacity = 4;          // constant capacity pressure
  fopts.owner_shards = 2;
  StressFixture f(fopts);

  constexpr int kThreads = 4;
  constexpr int kOps = 150;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, &failures, t] {
      for (int i = 0; i < kOps; ++i) {
        const forest::OwnerId owner = 1 + ((t * kOps + i) % 12);
        if (!f.forest->Upsert(owner, SortKey(i), "x").ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(f.forest->stats().evictions.Get(), 0u);
  f.forest->CheckInvariants();
}

// Raw Bw-tree: concurrent writers on overlapping key ranges (latch
// contention + splits + consolidations) with scans and cold-page eviction.
TEST(BwTreeStressTest, ConcurrentWritersScansAndEviction) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 1 << 12;
  cloud::CloudStore store(copts);
  bwtree::BwTreeOptions topts;
  topts.base_stream = store.CreateStream("base");
  topts.delta_stream = store.CreateStream("delta");
  topts.consolidate_threshold = 4;
  topts.max_leaf_entries = 32;
  bwtree::BwTree tree(&store, topts);

  constexpr int kWriters = 3;
  constexpr int kOps = 400;
  const uint64_t seed = test::AnnouncedSeed(
      "BwTreeStressTest.ConcurrentWritersScansAndEviction", 0xB7EE5);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&tree, &failures, seed, w] {
      Random rng(seed ^ (0x9E3779B9u * (w + 1)));
      for (int i = 0; i < kOps; ++i) {
        const int k = static_cast<int>(rng.Uniform(200));  // overlapping ranges
        if (!tree.Upsert(SortKey(k), "w" + std::to_string(w)).ok()) {
          failures.fetch_add(1);
        }
        if (rng.Uniform(13) == 0 && !tree.Delete(SortKey(k)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&tree, &failures, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<bwtree::Entry> out;
      bwtree::BwTree::ScanOptions scan;
      scan.limit = 50;
      if (!tree.Scan(scan, &out).ok()) failures.fetch_add(1);
      (void)tree.Get(SortKey(17));
    }
  });

  for (int i = 0; i < 20; ++i) {
    tree.EvictColdPages(/*target_resident=*/4);
    std::this_thread::yield();
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(failures.load(), 0);
  // Deleted-vs-upserted interleavings vary; the tree must still be ordered
  // and fully scannable.
  std::vector<bwtree::Entry> all;
  bwtree::BwTree::ScanOptions scan;
  ASSERT_TRUE(tree.Scan(scan, &all).ok());
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].key, all[i].key);
  }
}

// Shared-latch read path: many readers hammer one hot leaf while a writer
// mutates it and the driver concurrently evicts — the exact
// reader/reader/writer/evictor interleavings the SharedMutex conversion
// must survive. TSan builds verify the shared/exclusive handoffs.
TEST(BwTreeStressTest, SharedReadersVsWriterAndEvictionOnHotLeaf) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 1 << 12;
  cloud::CloudStore store(copts);
  bwtree::BwTreeOptions topts;
  topts.base_stream = store.CreateStream("base");
  topts.delta_stream = store.CreateStream("delta");
  topts.consolidate_threshold = 4;
  topts.max_leaf_entries = 64;  // everything fits in one hot leaf
  bwtree::BwTree tree(&store, topts);

  constexpr int kHotKeys = 16;
  for (int i = 0; i < kHotKeys; ++i) {
    ASSERT_TRUE(tree.Upsert(SortKey(i), "seed").ok());
  }

  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 2000;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&tree, &failures, r] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        auto v = tree.Get(SortKey((i + r) % kHotKeys));
        // A seeded key never disappears; it may change value.
        if (!v.ok()) failures.fetch_add(1);
        if (i % 64 == 0) {
          std::vector<bwtree::Entry> out;
          bwtree::BwTree::ScanOptions scan;
          scan.limit = kHotKeys;
          if (!tree.Scan(scan, &out).ok()) failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&tree, &failures, &stop] {
    int round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string v = "w" + std::to_string(round++);
      for (int i = 0; i < kHotKeys; ++i) {
        if (!tree.Upsert(SortKey(i), v).ok()) failures.fetch_add(1);
      }
    }
  });

  // Evictor: repeatedly drop the hot leaf (flushing it first via the
  // eviction path's own clean-page rule) so readers also race reloads.
  for (int i = 0; i < 50; ++i) {
    (void)tree.EvictColdPages(/*target_resident=*/0);
    std::this_thread::yield();
  }
  for (int r = 0; r < kReaders; ++r) threads[r].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(failures.load(), 0);
  // Reads really took the shared path (and writers the exclusive one).
  EXPECT_GT(tree.stats().latch_shared_acquires.Get(), 0u);
  EXPECT_GT(tree.stats().latch_exclusive_acquires.Get(), 0u);
  for (int i = 0; i < kHotKeys; ++i) {
    EXPECT_TRUE(tree.Get(SortKey(i)).ok());
  }
}

// Readers race the forest's structural transitions: owners being split out
// of INIT into dedicated trees (publishing the lock-free read pointer) and
// the forest-wide budget eviction dropping INIT/dedicated leaves mid-read.
TEST(ForestStressTest, ReadersRaceSplitOutAndBudgetEviction) {
  forest::ForestOptions fopts;
  fopts.split_out_threshold = 8;    // writers constantly trip split-outs
  fopts.init_tree_capacity = 256;   // and INIT-capacity evictions
  fopts.owner_shards = 4;
  StressFixture f(fopts);

  constexpr int kOwners = 12;
  constexpr int kWriters = 2;
  constexpr int kOpsPerWriter = 400;
  const uint64_t seed = test::AnnouncedSeed(
      "ForestStressTest.ReadersRaceSplitOutAndBudgetEviction", 0x5EED5);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&f, &failures, seed, w] {
      Random rng(seed ^ (0x9E3779B9u * (w + 1)));
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const forest::OwnerId owner =
            1 + static_cast<forest::OwnerId>(rng.Uniform(kOwners));
        const std::string key = SortKey(static_cast<int>(rng.Uniform(30)));
        if (!f.forest->Upsert(owner, key, "v" + std::to_string(i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&f, &failures, &stop, r] {
      uint64_t reads = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const forest::OwnerId owner = 1 + ((reads + r) % kOwners);
        (void)f.forest->Get(owner, SortKey(static_cast<int>(reads % 30)));
        std::vector<bwtree::Entry> out;
        if (!f.forest->ScanOwner(owner, "", 8, &out).ok()) {
          failures.fetch_add(1);
        }
        ++reads;
      }
    });
  }

  // Driver: forest-wide budget eviction racing the reads and split-outs.
  for (int cycle = 0; cycle < 30; ++cycle) {
    BG3_IGNORE_STATUS(f.forest->EvictToBudget(/*budget_bytes=*/8 << 10));
    std::this_thread::yield();
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(f.forest->stats().split_outs.Get(), 0u);
  f.forest->CheckInvariants();
  for (int o = 1; o <= kOwners; ++o) {
    std::vector<bwtree::Entry> out;
    ASSERT_TRUE(f.forest->ScanOwner(o, "", 1000, &out).ok());
  }
}

// --- invariant-checker death tests ------------------------------------------

using InvariantDeathTest = ::testing::Test;

// A route entry pointing at a page id that was never installed must abort
// the invariant walk (a "corrupted mapping-table entry").
TEST(InvariantDeathTest, RouteToDeadPageAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  bwtree::PageIndex index;
  auto page = std::make_unique<bwtree::LeafPage>(1);
  index.InsertPage(std::move(page));
  index.InsertRoute("", 1);
  index.CheckInvariants();  // consistent so far
  index.InsertRoute("x", 999);  // deliberately dangling
  EXPECT_DEATH(index.CheckInvariants(),
               "resolves to a dead mapping-table entry");
}

// A route key that disagrees with its page's low key is equally fatal.
TEST(InvariantDeathTest, RouteKeyLowKeyMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  bwtree::PageIndex index;
  auto page = std::make_unique<bwtree::LeafPage>(7);
  page->low_key = "m";  // not yet published; latch-free init is legal
  index.InsertPage(std::move(page));
  index.InsertRoute("", 7);  // route says "", page says "m"
  EXPECT_DEATH(index.CheckInvariants(), "does not match page");
}

// Satellite for the observability layer: hammer one shared Histogram and
// the registry snapshot path from many threads at once. Run under TSan
// (-DBG3_SANITIZE=thread) this proves the sharded buckets, the snapshot
// merge, and get-or-create registration are race-free.
TEST(ObservabilityStressTest, HistogramAndRegistryContention) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  Histogram* shared = reg.GetHistogram("stress.obs.shared_hist");
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20'000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([shared, &reg, t] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        shared->Record(static_cast<uint64_t>(i % 1'000) + 1);
        if (i % 256 == 0) {
          // Concurrent get-or-create of the same name from all writers.
          reg.GetCounter("stress.obs.shared_counter")->Inc();
        }
        (void)t;
      }
    });
  }
  std::thread reader([shared, &reg, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const Histogram::Snapshot s = shared->TakeSnapshot();
      uint64_t total = 0;
      for (uint64_t b : s.buckets) total += b;
      // Internal consistency even mid-write: bucket mass == count.
      ASSERT_EQ(total, s.count);
      (void)reg.TakeSnapshot();
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(shared->Count(),
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(reg.TakeSnapshot().counters.at("stress.obs.shared_counter"),
            static_cast<uint64_t>(kWriters) * (kOpsPerWriter / 256 + 1));
}

TEST(InvariantDeathTest, DcheckFiresWhenEnabled) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  if (BG3_DCHECK_IS_ON()) {
    EXPECT_DEATH(BG3_DCHECK(1 == 2), "BG3_CHECK failed");
  } else {
    BG3_DCHECK(1 == 2);  // must compile and be a no-op
    SUCCEED();
  }
}

}  // namespace
}  // namespace bg3
