// Crash-recovery tests: an RW node rebuilt from shared storage (manifest
// images + WAL replay) must serve the exact pre-crash state and continue
// the WAL so existing RO nodes keep tailing seamlessly.
#include <gtest/gtest.h>

#include <memory>

#include "cloud/cloud_store.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"

namespace bg3::replication {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

struct CrashFixture {
  explicit CrashFixture(size_t flush_group_pages = 8,
                        size_t max_leaf_entries = 32) {
    store = std::make_unique<cloud::CloudStore>();
    rw_opts.tree.tree_id = 1;
    rw_opts.tree.max_leaf_entries = max_leaf_entries;
    rw_opts.tree.base_stream = store->CreateStream("base");
    rw_opts.tree.delta_stream = store->CreateStream("delta");
    rw_opts.wal.stream = store->CreateStream("wal");
    rw_opts.flush_group_pages = flush_group_pages;
    rw = std::make_unique<RwNode>(store.get(), rw_opts);
  }

  void Crash() { rw.reset(); }

  Status Recover() {
    auto recovered = RwNode::Recover(store.get(), rw_opts);
    BG3_RETURN_IF_ERROR(recovered.status());
    rw = recovered.take();
    return Status::OK();
  }

  std::unique_ptr<cloud::CloudStore> store;
  RwNodeOptions rw_opts;
  std::unique_ptr<RwNode> rw;
};

TEST(RecoveryTest, AllDataSurvivesCrashWithFlushes) {
  CrashFixture f;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(f.rw->Get(Key(i)).value(), "v" + std::to_string(i)) << i;
  }
}

TEST(RecoveryTest, RecoversFromWalOnlyNoFlushEver) {
  CrashFixture f(/*flush_group_pages=*/1'000'000);
  f.rw_opts.flush_group_pages = 1'000'000;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "wal-only").ok());
  }
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(f.rw->Get(Key(i)).ok()) << i;
  }
}

TEST(RecoveryTest, DeletesAndOverwritesSurvive) {
  CrashFixture f;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "v1").ok());
  for (int i = 0; i < 100; i += 2) ASSERT_TRUE(f.rw->Delete(Key(i)).ok());
  for (int i = 1; i < 100; i += 2) ASSERT_TRUE(f.rw->Put(Key(i), "v2").ok());
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(f.rw->Get(Key(i)).status().IsNotFound()) << i;
    } else {
      EXPECT_EQ(f.rw->Get(Key(i)).value(), "v2") << i;
    }
  }
}

TEST(RecoveryTest, WritesContinueAndSplitsWorkAfterRecovery) {
  CrashFixture f(/*flush_group_pages=*/8, /*max_leaf_entries=*/8);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "old").ok());
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  // New writes must allocate non-colliding page ids and split correctly.
  for (int i = 100; i < 400; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "new").ok());
  }
  EXPECT_GT(f.rw->tree()->stats().splits.Get(), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "old");
  for (int i = 100; i < 400; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "new");
}

TEST(RecoveryTest, PreCrashRoNodeKeepsTailingAfterRecovery) {
  CrashFixture f;
  RoNodeOptions ro_opts;
  ro_opts.wal_stream = 2;
  RoNode ro(f.store.get(), ro_opts);
  for (int i = 0; i < 150; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "v1").ok());
  // RO observes the pre-crash state.
  EXPECT_EQ(ro.Get(1, Key(7)).value(), "v1");
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 150; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "v2").ok());
  // The same RO instance (old WAL cursor) follows the recovered leader.
  for (int i = 0; i < 150; ++i) {
    EXPECT_EQ(ro.Get(1, Key(i)).value(), "v2") << i;
  }
}

TEST(RecoveryTest, FreshRoAfterRecoverySeesEverything) {
  CrashFixture f;
  for (int i = 0; i < 150; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "v").ok());
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  RoNodeOptions ro_opts;
  ro_opts.wal_stream = 2;
  RoNode fresh(f.store.get(), ro_opts);
  for (int i = 0; i < 150; ++i) EXPECT_TRUE(fresh.Get(1, Key(i)).ok()) << i;
}

TEST(RecoveryTest, DoubleCrashDoubleRecover) {
  CrashFixture f;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "a").ok());
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 100; i < 200; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "b").ok());
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "a");
  for (int i = 100; i < 200; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "b");
}

TEST(RecoveryTest, RecoverEmptyWalFails) {
  cloud::CloudStore store;
  RwNodeOptions opts;
  opts.tree.tree_id = 1;
  opts.tree.base_stream = store.CreateStream("base");
  opts.tree.delta_stream = store.CreateStream("delta");
  opts.wal.stream = store.CreateStream("wal");
  EXPECT_FALSE(RwNode::Recover(&store, opts).ok());
}

}  // namespace
}  // namespace bg3::replication
