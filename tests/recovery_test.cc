// Crash-recovery tests: an RW node rebuilt from shared storage (manifest
// images + WAL replay) must serve the exact pre-crash state and continue
// the WAL so existing RO nodes keep tailing seamlessly.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cloud/cloud_store.h"
#include "cloud/fault_injector.h"
#include "replication/checkpoint.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"
#include "test_seed.h"

namespace bg3::replication {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

struct CrashFixture {
  explicit CrashFixture(size_t flush_group_pages = 8,
                        size_t max_leaf_entries = 32) {
    store = std::make_unique<cloud::CloudStore>();
    rw_opts.tree.tree_id = 1;
    rw_opts.tree.max_leaf_entries = max_leaf_entries;
    rw_opts.tree.base_stream = store->CreateStream("base");
    rw_opts.tree.delta_stream = store->CreateStream("delta");
    rw_opts.wal.stream = store->CreateStream("wal");
    rw_opts.flush_group_pages = flush_group_pages;
    rw = std::make_unique<RwNode>(store.get(), rw_opts);
  }

  void Crash() { rw.reset(); }

  Status Recover() {
    auto recovered = RwNode::Recover(store.get(), rw_opts);
    BG3_RETURN_IF_ERROR(recovered.status());
    rw = recovered.take();
    return Status::OK();
  }

  std::unique_ptr<cloud::CloudStore> store;
  RwNodeOptions rw_opts;
  std::unique_ptr<RwNode> rw;
};

TEST(RecoveryTest, AllDataSurvivesCrashWithFlushes) {
  CrashFixture f;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(f.rw->Get(Key(i)).value(), "v" + std::to_string(i)) << i;
  }
}

TEST(RecoveryTest, RecoversFromWalOnlyNoFlushEver) {
  CrashFixture f(/*flush_group_pages=*/1'000'000);
  f.rw_opts.flush_group_pages = 1'000'000;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "wal-only").ok());
  }
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(f.rw->Get(Key(i)).ok()) << i;
  }
}

TEST(RecoveryTest, DeletesAndOverwritesSurvive) {
  CrashFixture f;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "v1").ok());
  for (int i = 0; i < 100; i += 2) ASSERT_TRUE(f.rw->Delete(Key(i)).ok());
  for (int i = 1; i < 100; i += 2) ASSERT_TRUE(f.rw->Put(Key(i), "v2").ok());
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(f.rw->Get(Key(i)).status().IsNotFound()) << i;
    } else {
      EXPECT_EQ(f.rw->Get(Key(i)).value(), "v2") << i;
    }
  }
}

TEST(RecoveryTest, WritesContinueAndSplitsWorkAfterRecovery) {
  CrashFixture f(/*flush_group_pages=*/8, /*max_leaf_entries=*/8);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "old").ok());
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  // New writes must allocate non-colliding page ids and split correctly.
  for (int i = 100; i < 400; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "new").ok());
  }
  EXPECT_GT(f.rw->tree()->stats().splits.Get(), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "old");
  for (int i = 100; i < 400; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "new");
}

TEST(RecoveryTest, PreCrashRoNodeKeepsTailingAfterRecovery) {
  CrashFixture f;
  RoNodeOptions ro_opts;
  ro_opts.wal_stream = 2;
  RoNode ro(f.store.get(), ro_opts);
  for (int i = 0; i < 150; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "v1").ok());
  // RO observes the pre-crash state.
  EXPECT_EQ(ro.Get(1, Key(7)).value(), "v1");
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 150; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "v2").ok());
  // The same RO instance (old WAL cursor) follows the recovered leader.
  for (int i = 0; i < 150; ++i) {
    EXPECT_EQ(ro.Get(1, Key(i)).value(), "v2") << i;
  }
}

TEST(RecoveryTest, FreshRoAfterRecoverySeesEverything) {
  CrashFixture f;
  for (int i = 0; i < 150; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "v").ok());
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  RoNodeOptions ro_opts;
  ro_opts.wal_stream = 2;
  RoNode fresh(f.store.get(), ro_opts);
  for (int i = 0; i < 150; ++i) EXPECT_TRUE(fresh.Get(1, Key(i)).ok()) << i;
}

TEST(RecoveryTest, DoubleCrashDoubleRecover) {
  CrashFixture f;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "a").ok());
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 100; i < 200; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "b").ok());
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "a");
  for (int i = 100; i < 200; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "b");
}

// --- fault matrix: crash + recover under each substrate failure mode ---------
//
// Every write the node acknowledged before the crash must be served after
// recovery, with the fault injector attached the whole time (writes, crash,
// recovery, verification). Default retry budgets absorb the injected
// faults; the seed is printed so any failure replays exactly.

class RecoveryFaultMatrixTest
    : public ::testing::TestWithParam<cloud::FaultClass> {};

cloud::FaultInjectorOptions MatrixOptions(cloud::FaultClass cls,
                                          uint64_t seed) {
  cloud::FaultInjectorOptions fopts;
  fopts.seed = seed;
  switch (cls) {
    case cloud::FaultClass::kTransientError:
      fopts.transient_error_p = 0.03;
      break;
    case cloud::FaultClass::kLatencySpike:
      fopts.latency_spike_p = 0.20;
      break;
    case cloud::FaultClass::kTornAppend:
      fopts.torn_append_p = 0.03;
      break;
    case cloud::FaultClass::kCorruptRead:
      fopts.corrupt_read_p = 0.03;
      break;
  }
  return fopts;
}

TEST_P(RecoveryFaultMatrixTest, NoAcknowledgedWriteLost) {
  const cloud::FaultClass cls = GetParam();
  const std::string name =
      std::string("RecoveryFaultMatrix/") + cloud::FaultClassName(cls);
  cloud::FaultInjector fi(MatrixOptions(
      cls,
      test::AnnouncedSeed(name.c_str(),
                          0xFA0175 + static_cast<uint64_t>(cls))));
  CrashFixture f;
  f.store->SetFaultInjector(&fi);

  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v" + std::to_string(i)).ok())
        << "i=" << i << " " << fi.ToString();
  }
  f.Crash();
  ASSERT_TRUE(f.Recover().ok()) << fi.ToString();
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(f.rw->Get(Key(i)).value(), "v" + std::to_string(i))
        << "i=" << i << " " << fi.ToString();
  }
  // An RO follower converges on the same recovered state.
  RoNodeOptions ro_opts;
  ro_opts.wal_stream = f.rw_opts.wal.stream;
  RoNode ro(f.store.get(), ro_opts);
  for (int i = 0; i < 300; i += 7) {
    EXPECT_EQ(ro.Get(1, Key(i)).value(), "v" + std::to_string(i))
        << "i=" << i << " " << fi.ToString();
  }
  EXPECT_GT(f.store->stats().injected_faults.Get(), 0u)
      << "matrix must actually exercise " << cloud::FaultClassName(cls);
  EXPECT_EQ(f.store->stats().retry_exhausted.Get(), 0u) << fi.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultClasses, RecoveryFaultMatrixTest,
    ::testing::Values(cloud::FaultClass::kTransientError,
                      cloud::FaultClass::kLatencySpike,
                      cloud::FaultClass::kTornAppend,
                      cloud::FaultClass::kCorruptRead),
    [](const ::testing::TestParamInfo<cloud::FaultClass>& info) {
      return cloud::FaultClassName(info.param);
    });

// The acceptance counter-example: with WAL retries disabled, a torn append
// silently turns an *acknowledged* write into a buffered-only write — a
// crash in that window loses it. The identical schedule with default
// retries loses nothing.
TEST(RecoveryFaultTest, TornWalAppendPlusCrashLosesAckedWriteWithoutRetries) {
  for (const bool retries_enabled : {false, true}) {
    cloud::FaultInjector fi;
    auto store = std::make_unique<cloud::CloudStore>();
    RwNodeOptions opts;
    opts.tree.tree_id = 1;
    opts.tree.base_stream = store->CreateStream("base");
    opts.tree.delta_stream = store->CreateStream("delta");
    opts.wal.stream = store->CreateStream("wal");
    // Durability rests on the WAL alone: no group flush ever triggers.
    opts.flush_group_pages = 1'000'000;
    opts.flush_group_mutations = 1'000'000'000;
    if (!retries_enabled) opts.wal.retry.max_attempts = 1;
    auto rw = std::make_unique<RwNode>(store.get(), opts);
    store->SetFaultInjector(&fi);

    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(rw->Put(Key(i), "durable").ok());
    }
    fi.ArmNext(cloud::FaultOp::kAppend, cloud::FaultClass::kTornAppend);
    // The node acknowledges the write either way: the WAL listener keeps a
    // failed batch buffered for the next flush rather than failing the Put.
    ASSERT_TRUE(rw->Put(Key(10), "acked").ok());

    rw.reset();  // crash: the buffered (torn, un-retried) batch is gone.
    auto recovered = RwNode::Recover(store.get(), opts);
    ASSERT_TRUE(recovered.ok());
    rw = recovered.take();

    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(rw->Get(Key(i)).value(), "durable") << i;
    }
    if (retries_enabled) {
      EXPECT_EQ(rw->Get(Key(10)).value(), "acked")
          << "the retried append must make the acked write durable";
    } else {
      EXPECT_TRUE(rw->Get(Key(10)).status().IsNotFound())
          << "without retries the acked write must be demonstrably lost";
    }
  }
}

// --- mid-checkpoint crashes (DESIGN.md §5.7) ---------------------------------
//
// The fuzzy checkpoint publishes in a fixed order: page images, manifest
// slot, head flip, (optionally) WAL truncation. A crash between any two of
// those steps must recover to the exact acknowledged state — either from
// the new checkpoint or by falling back to the previous one.

TEST(RecoveryCheckpointTest, CrashBetweenManifestPutAndTruncationAdvance) {
  CrashFixture f;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  // Publish a durable checkpoint but crash before the truncation advance
  // (truncate_wal off models exactly that window: manifest durable, WAL
  // prefix still present).
  Checkpointer ckpt(f.store.get(), f.rw.get());
  ASSERT_TRUE(ckpt.CheckpointNow().ok());
  ASSERT_GT(ckpt.epoch(), 0u);
  const uint64_t wal_total = f.store->TotalBytes(f.rw_opts.wal.stream);

  // More writes past the checkpoint, then crash.
  for (int i = 300; i < 350; ++i) {
    ASSERT_TRUE(f.rw->Put(Key(i), "suffix").ok());
  }
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(f.rw->Get(Key(i)).value(), "v" + std::to_string(i)) << i;
  }
  for (int i = 300; i < 350; ++i) {
    EXPECT_EQ(f.rw->Get(Key(i)).value(), "suffix") << i;
  }

  // Recovery resumed from the manifest: a fresh follower (which bootstraps
  // the same way) replays only the post-checkpoint suffix.
  RoNodeOptions ro_opts;
  ro_opts.wal_stream = f.rw_opts.wal.stream;
  RoNode fresh(f.store.get(), ro_opts);
  ASSERT_TRUE(fresh.PollWal().ok());
  EXPECT_TRUE(fresh.ResumedFromCheckpoint());
  EXPECT_LT(fresh.WalBytesReplayed(), wal_total);
}

TEST(RecoveryCheckpointTest, CrashAfterTruncationAdvanceStillRecovers) {
  // The complementary window: checkpoint durable AND the covered WAL prefix
  // already reclaimed. Recovery must come up from images + suffix alone.
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 256;  // many small extents so truncation bites
  auto store = std::make_unique<cloud::CloudStore>(copts);
  RwNodeOptions opts;
  opts.tree.tree_id = 1;
  opts.tree.max_leaf_entries = 32;
  opts.tree.base_stream = store->CreateStream("base");
  opts.tree.delta_stream = store->CreateStream("delta");
  opts.wal.stream = store->CreateStream("wal");
  opts.flush_group_pages = 8;
  auto rw = std::make_unique<RwNode>(store.get(), opts);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(rw->Put(Key(i), "pre-truncate").ok());
  }
  CheckpointerOptions copts2;
  copts2.truncate_wal = true;
  Checkpointer ckpt(store.get(), rw.get(), copts2);
  ASSERT_TRUE(ckpt.CheckpointNow().ok());
  EXPECT_GT(ckpt.stats().wal_extents_truncated.Get(), 0u)
      << "test must actually exercise a truncated prefix";
  for (int i = 400; i < 450; ++i) {
    ASSERT_TRUE(rw->Put(Key(i), "suffix").ok());
  }
  rw.reset();  // crash
  auto recovered = RwNode::Recover(store.get(), opts);
  ASSERT_TRUE(recovered.ok());
  rw = recovered.take();
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(rw->Get(Key(i)).value(), "pre-truncate") << i;
  }
  for (int i = 400; i < 450; ++i) {
    EXPECT_EQ(rw->Get(Key(i)).value(), "suffix") << i;
  }
}

TEST(RecoveryCheckpointTest, TornManifestHeadFallsBackToPreviousCheckpoint) {
  CrashFixture f;
  const std::string scope = WalCheckpointScope(f.rw_opts.wal.stream);
  Checkpointer ckpt(f.store.get(), f.rw.get());

  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "epoch1").ok());
  ASSERT_TRUE(ckpt.CheckpointNow().ok());
  const uint64_t epoch1 = ckpt.epoch();
  for (int i = 100; i < 200; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "epoch2").ok());
  ASSERT_TRUE(ckpt.CheckpointNow().ok());
  ASSERT_GT(ckpt.epoch(), epoch1);

  // Tear the newest slot (a torn manifest write crashed mid-publish).
  f.store->ManifestPut(CheckpointSlotKey(scope, ckpt.epoch()),
                       "torn-garbage-not-a-manifest");
  auto loaded = LoadCheckpoint(f.store.get(), scope);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().fell_back);
  EXPECT_EQ(loaded.value().manifest.epoch, epoch1);

  // Recovery still serves everything: the older checkpoint plus a longer
  // WAL suffix replay covers the full acknowledged state.
  f.Crash();
  ASSERT_TRUE(f.Recover().ok());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "epoch1");
  for (int i = 100; i < 200; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "epoch2");

  RoNodeOptions ro_opts;
  ro_opts.wal_stream = f.rw_opts.wal.stream;
  RoNode follower(f.store.get(), ro_opts);
  ASSERT_TRUE(follower.PollWal().ok());
  EXPECT_TRUE(follower.ResumedFromCheckpoint());
  EXPECT_TRUE(follower.CheckpointFellBack());
}

TEST(RecoveryCheckpointTest, BothSlotsTornFallsBackToFullReplay) {
  CrashFixture f;
  const std::string scope = WalCheckpointScope(f.rw_opts.wal.stream);
  Checkpointer ckpt(f.store.get(), f.rw.get());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "a").ok());
  ASSERT_TRUE(ckpt.CheckpointNow().ok());
  for (int i = 100; i < 200; ++i) ASSERT_TRUE(f.rw->Put(Key(i), "b").ok());
  ASSERT_TRUE(ckpt.CheckpointNow().ok());

  f.store->ManifestPut(CheckpointSlotKey(scope, 0), "torn");
  f.store->ManifestPut(CheckpointSlotKey(scope, 1), "torn");
  EXPECT_TRUE(LoadCheckpoint(f.store.get(), scope).status().IsNotFound());

  f.Crash();
  ASSERT_TRUE(f.Recover().ok());  // full-WAL replay path
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "a");
  for (int i = 100; i < 200; ++i) EXPECT_EQ(f.rw->Get(Key(i)).value(), "b");

  RoNodeOptions ro_opts;
  ro_opts.wal_stream = f.rw_opts.wal.stream;
  RoNode follower(f.store.get(), ro_opts);
  ASSERT_TRUE(follower.PollWal().ok());
  EXPECT_FALSE(follower.ResumedFromCheckpoint());
}

TEST(RecoveryCheckpointTest, CrashAfterEveryCheckpointStep) {
  // Drive the cut one bounded Step at a time and crash after each: every
  // intermediate state (cut open, images partially published, manifest
  // committed) must recover to the full acknowledged state.
  for (int crash_after = 1; crash_after <= 6; ++crash_after) {
    CrashFixture f(/*flush_group_pages=*/1'000'000, /*max_leaf_entries=*/8);
    for (int i = 0; i < 120; ++i) {
      ASSERT_TRUE(f.rw->Put(Key(i), "v" + std::to_string(i)).ok());
    }
    CheckpointerOptions copts;
    copts.max_pages_per_round = 2;  // many steps per cut
    Checkpointer ckpt(f.store.get(), f.rw.get(), copts);
    for (int s = 0; s < crash_after; ++s) {
      ASSERT_TRUE(ckpt.Step().ok()) << "step " << s;
    }
    f.Crash();
    ASSERT_TRUE(f.Recover().ok()) << "crash_after=" << crash_after;
    for (int i = 0; i < 120; ++i) {
      EXPECT_EQ(f.rw->Get(Key(i)).value(), "v" + std::to_string(i))
          << "crash_after=" << crash_after << " i=" << i;
    }
  }
}

TEST(RecoveryTest, RecoverEmptyWalFails) {
  cloud::CloudStore store;
  RwNodeOptions opts;
  opts.tree.tree_id = 1;
  opts.tree.base_stream = store.CreateStream("base");
  opts.tree.delta_stream = store.CreateStream("delta");
  opts.wal.stream = store.CreateStream("wal");
  EXPECT_FALSE(RwNode::Recover(&store, opts).ok());
}

}  // namespace
}  // namespace bg3::replication
