#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cloud/cloud_store.h"
#include "core/graph_db.h"
#include "query/query.h"

namespace bg3::query {
namespace {

constexpr graph::EdgeType kFollows = 1;
constexpr graph::EdgeType kLikes = 2;

struct QueryFixture {
  QueryFixture() {
    store = std::make_unique<cloud::CloudStore>();
    core::GraphDBOptions opts;
    db = std::make_unique<core::GraphDB>(store.get(), opts);
    // 1 follows {2,3}; 2 follows {3,4}; 3 follows {1};
    // 2 likes {100,101}; 4 likes {100}.
    Add(1, kFollows, 2);
    Add(1, kFollows, 3);
    Add(2, kFollows, 3);
    Add(2, kFollows, 4);
    Add(3, kFollows, 1);
    Add(2, kLikes, 100);
    Add(2, kLikes, 101);
    Add(4, kLikes, 100);
  }
  void Add(graph::VertexId s, graph::EdgeType t, graph::VertexId d) {
    ASSERT_TRUE(db->AddEdge(s, t, d, "p", s * 1000 + d).ok());
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<core::GraphDB> db;
};

TEST(QueryTest, SingleHopOut) {
  QueryFixture f;
  auto r = Query(f.db.get()).V(1).Out(kFollows).Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<graph::VertexId>{2, 3}));
}

TEST(QueryTest, TwoHopWithDedup) {
  QueryFixture f;
  // 1 -> {2,3} -> {3,4,1}; without dedup 3 appears via 2 and 1 via 3.
  auto without = Query(f.db.get()).V(1).Out(kFollows).Out(kFollows).Count();
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without.value(), 3u);  // 3, 4 (from 2) and 1 (from 3)
  auto with = Query(f.db.get())
                  .V(1)
                  .Out(kFollows)
                  .Out(kFollows)
                  .Dedup()
                  .Execute();
  ASSERT_TRUE(with.ok());
  std::set<graph::VertexId> unique(with.value().begin(), with.value().end());
  EXPECT_EQ(unique.size(), with.value().size());
}

TEST(QueryTest, MixedEdgeTypes) {
  QueryFixture f;
  // Videos liked by people user 1 follows.
  auto r = Query(f.db.get()).V(1).Out(kFollows).Out(kLikes).Dedup().Order()
               .Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<graph::VertexId>{100, 101}));
}

TEST(QueryTest, WhereFiltersVertices) {
  QueryFixture f;
  auto r = Query(f.db.get())
               .V(1)
               .Out(kFollows)
               .Where([](graph::VertexId v) { return v % 2 == 0; })
               .Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<graph::VertexId>{2}));
}

TEST(QueryTest, WhereEdgeFiltersByProvenance) {
  QueryFixture f;
  // Edge timestamps are s*1000+d; keep only the 1->3 edge.
  auto r = Query(f.db.get())
               .V(1)
               .Out(kFollows)
               .WhereEdge([](const graph::Neighbor& n) {
                 return n.created_us == 1003;
               })
               .Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<graph::VertexId>{3}));
}

TEST(QueryTest, WhereEdgeWithoutOutFails) {
  QueryFixture f;
  auto r = Query(f.db.get())
               .V(1)
               .WhereEdge([](const graph::Neighbor&) { return true; })
               .Execute();
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(QueryTest, LimitAndOrder) {
  QueryFixture f;
  auto r = Query(f.db.get())
               .V({3, 1})
               .Out(kFollows)
               .Order()
               .Limit(2)
               .Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<graph::VertexId>{1, 2}));
}

TEST(QueryTest, SampleIsDeterministicAndBounded) {
  QueryFixture f;
  for (graph::VertexId d = 10; d < 60; ++d) {
    ASSERT_TRUE(f.db->AddEdge(9, kFollows, d, "", 1).ok());
  }
  auto a = Query(f.db.get()).V(9).Out(kFollows).Sample(5, 42).Execute();
  auto b = Query(f.db.get()).V(9).Out(kFollows).Sample(5, 42).Execute();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.value().size(), 5u);
  auto c = Query(f.db.get()).V(9).Out(kFollows).Sample(5, 43).Execute();
  EXPECT_NE(a.value(), c.value());  // different seed, different sample
}

TEST(QueryTest, CountAndAny) {
  QueryFixture f;
  EXPECT_EQ(Query(f.db.get()).V(1).Out(kFollows).Count().value(), 2u);
  EXPECT_TRUE(Query(f.db.get()).V(1).Out(kFollows).Any().value());
  EXPECT_FALSE(Query(f.db.get()).V(999).Out(kFollows).Any().value());
}

TEST(QueryTest, EmptySourceYieldsEmpty) {
  QueryFixture f;
  auto r = Query(f.db.get()).Out(kFollows).Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(QueryTest, PerVertexLimitBoundsFanout) {
  QueryFixture f;
  for (graph::VertexId d = 10; d < 60; ++d) {
    ASSERT_TRUE(f.db->AddEdge(9, kFollows, d, "", 1).ok());
  }
  auto r = Query(f.db.get()).V(9).Out(kFollows, /*per_vertex_limit=*/7).Count();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7u);
}

}  // namespace
}  // namespace bg3::query
