// Randomized leader-follower consistency fuzzing: arbitrary interleavings
// of writes, deletes, group flushes, RO reads/scans, cache pressure, log
// compaction, crash-recovery and WAL truncation must never let an RO node
// observe anything but the RW node's latest state.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "cloud/cloud_store.h"
#include "common/random.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"
#include "test_seed.h"

namespace bg3::replication {
namespace {

struct FuzzParam {
  uint64_t seed;
  size_t flush_group_pages;
  size_t max_leaf_entries;
  size_t ro_cache_pages;
  bool with_crashes;
};

std::string ParamName(const testing::TestParamInfo<FuzzParam>& info) {
  return "seed" + std::to_string(info.param.seed) + "_fg" +
         std::to_string(info.param.flush_group_pages) + "_leaf" +
         std::to_string(info.param.max_leaf_entries) + "_cache" +
         std::to_string(info.param.ro_cache_pages) +
         (info.param.with_crashes ? "_crash" : "");
}

class ReplicationFuzzTest : public testing::TestWithParam<FuzzParam> {};

TEST_P(ReplicationFuzzTest, RoAlwaysMatchesModel) {
  const FuzzParam& p = GetParam();
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 8192;
  cloud::CloudStore store(copts);
  RwNodeOptions rw_opts;
  rw_opts.tree.tree_id = 1;
  rw_opts.tree.max_leaf_entries = p.max_leaf_entries;
  rw_opts.tree.base_stream = store.CreateStream("base");
  rw_opts.tree.delta_stream = store.CreateStream("delta");
  rw_opts.wal.stream = store.CreateStream("wal");
  rw_opts.flush_group_pages = p.flush_group_pages;
  auto rw = std::make_unique<RwNode>(&store, rw_opts);

  RoNodeOptions ro_opts;
  ro_opts.wal_stream = rw_opts.wal.stream;
  ro_opts.cache_capacity_pages = p.ro_cache_pages;
  ro_opts.pending_compact_threshold = 32;
  RoNode ro(&store, ro_opts);

  std::map<std::string, std::string> model;
  // BG3_TEST_SEED replays a failing schedule (combine with --gtest_filter
  // to pin the non-seed parameters of the failing instantiation).
  Random rng(test::AnnouncedSeed("ReplicationFuzzTest.RoAlwaysMatchesModel",
                                 p.seed));
  auto key_of = [](uint64_t k) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%06llu", static_cast<unsigned long long>(k));
    return std::string(buf);
  };

  for (int i = 0; i < 4000; ++i) {
    const int action = static_cast<int>(rng.Uniform(100));
    const std::string key = key_of(rng.Uniform(400));
    if (action < 45) {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(rw->Put(key, value).ok());
      model[key] = value;
    } else if (action < 55) {
      ASSERT_TRUE(rw->Delete(key).ok());
      model.erase(key);
    } else if (action < 85) {
      auto got = ro.Get(1, key);
      auto mit = model.find(key);
      if (mit == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key << " @" << i;
      } else {
        ASSERT_TRUE(got.ok()) << key << " @" << i;
        EXPECT_EQ(got.value(), mit->second) << key << " @" << i;
      }
    } else if (action < 90) {
      std::string lo = key_of(rng.Uniform(400));
      std::string hi = key_of(rng.Uniform(400));
      if (hi < lo) std::swap(lo, hi);
      std::vector<bwtree::Entry> out;
      ASSERT_TRUE(ro.Scan(1, lo, hi, 1u << 20, &out).ok());
      std::vector<std::pair<std::string, std::string>> expected(
          model.lower_bound(lo), model.lower_bound(hi));
      ASSERT_EQ(out.size(), expected.size()) << lo << ".." << hi << " @" << i;
      for (size_t j = 0; j < out.size(); ++j) {
        EXPECT_EQ(out[j].key, expected[j].first);
        EXPECT_EQ(out[j].value, expected[j].second);
      }
    } else if (action < 93) {
      ASSERT_TRUE(rw->FlushGroup().ok());
    } else if (action < 95) {
      ro.CompactPendingLogs();
    } else if (action < 96) {
      // Memory pressure on the leader: drop clean base pages.
      (void)rw->tree()->EvictColdPages(rng.Uniform(8));
    } else if (action < 98 && p.with_crashes) {
      rw.reset();  // crash
      auto recovered = RwNode::Recover(&store, rw_opts);
      ASSERT_TRUE(recovered.ok()) << "@" << i;
      rw = recovered.take();
    } else {
      // WAL truncation bounded by this RO's cursor and the checkpoint.
      const cloud::PagePointer ckpt = rw->last_checkpoint_wal_ptr();
      const cloud::PagePointer cursor = ro.WalCursor();
      if (!ckpt.IsNull() && !cursor.IsNull()) {
        (void)store.TruncateStreamBefore(
            rw_opts.wal.stream, std::min(ckpt.extent_id, cursor.extent_id));
      }
    }
  }
  // Full final verification through the RO.
  for (const auto& [key, value] : model) {
    EXPECT_EQ(ro.Get(1, key).value(), value) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReplicationFuzzTest,
    testing::Values(FuzzParam{1, 4, 8, 1024, false},
                    FuzzParam{2, 1'000'000, 16, 1024, false},
                    FuzzParam{3, 8, 32, 2, false},  // heavy cache pressure
                    FuzzParam{4, 2, 4, 8, false},   // tiny pages, eager flush
                    FuzzParam{5, 8, 16, 64, true},  // with crash-recovery
                    FuzzParam{6, 16, 8, 4, true}),
    ParamName);

}  // namespace
}  // namespace bg3::replication
