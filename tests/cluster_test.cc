// Tests of the full BG3 deployment topology (§3.1): hashed multi-RW
// partitions, follower pools, leader crash recovery, WAL truncation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

#include "cloud/cloud_store.h"
#include "cloud/fault_injector.h"
#include "replication/cluster.h"
#include "test_seed.h"

namespace bg3::replication {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

struct ClusterFixture {
  explicit ClusterFixture(int partitions = 3, int followers = 2,
                          size_t max_leaf_entries = 32) {
    store = std::make_unique<cloud::CloudStore>();
    ClusterOptions opts;
    opts.partitions = partitions;
    opts.followers_per_partition = followers;
    opts.max_leaf_entries = max_leaf_entries;
    opts.flush_group_pages = 8;
    cluster = std::make_unique<Bg3Cluster>(store.get(), opts);
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<Bg3Cluster> cluster;
};

TEST(ClusterTest, WritesSpreadAcrossPartitions) {
  ClusterFixture f;
  std::vector<int> hits(f.cluster->partitions(), 0);
  for (int i = 0; i < 300; ++i) ++hits[f.cluster->PartitionOf(Key(i))];
  for (int p = 0; p < f.cluster->partitions(); ++p) {
    EXPECT_GT(hits[p], 50) << "partition " << p << " starved";
  }
}

TEST(ClusterTest, FollowerReadsAreStronglyConsistent) {
  ClusterFixture f;
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), "v" + std::to_string(i)).ok());
    // Read-your-write through a follower, immediately.
    EXPECT_EQ(f.cluster->Get(Key(i)).value(), "v" + std::to_string(i)) << i;
  }
}

TEST(ClusterTest, LeaderAndFollowerAgree) {
  ClusterFixture f;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), std::to_string(i)).ok());
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(f.cluster->Get(Key(i)).value(),
              f.cluster->GetFromLeader(Key(i)).value());
  }
}

TEST(ClusterTest, DeletesReplicateToFollowers) {
  ClusterFixture f;
  ASSERT_TRUE(f.cluster->Put("k", "v").ok());
  ASSERT_TRUE(f.cluster->Delete("k").ok());
  EXPECT_TRUE(f.cluster->Get("k").status().IsNotFound());
}

TEST(ClusterTest, MergedScanIsGloballyOrdered) {
  ClusterFixture f;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), std::to_string(i)).ok());
  }
  std::vector<bwtree::Entry> out;
  ASSERT_TRUE(f.cluster->Scan(Key(50), Key(150), 1000, &out).ok());
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(out.front().key, Key(50));
  EXPECT_EQ(out.back().key, Key(149));
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].key, out[i].key);
  }
}

TEST(ClusterTest, ScanLimitAcrossPartitions) {
  ClusterFixture f;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.cluster->Put(Key(i), "v").ok());
  std::vector<bwtree::Entry> out;
  ASSERT_TRUE(f.cluster->Scan("", "", 17, &out).ok());
  EXPECT_EQ(out.size(), 17u);
  EXPECT_EQ(out.front().key, Key(0));
}

TEST(ClusterTest, LeaderCrashRecoveryKeepsServing) {
  ClusterFixture f;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), "v1").ok());
  }
  for (int p = 0; p < f.cluster->partitions(); ++p) {
    ASSERT_TRUE(f.cluster->CrashAndRecoverLeader(p).ok());
  }
  // All data intact on leaders and followers.
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(f.cluster->GetFromLeader(Key(i)).value(), "v1") << i;
    EXPECT_EQ(f.cluster->Get(Key(i)).value(), "v1") << i;
  }
  // Writes continue post-recovery.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), "v2").ok());
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(f.cluster->Get(Key(i)).value(), "v2") << i;
  }
}

TEST(ClusterTest, WalTruncationFreesSpaceWithoutBreakingReaders) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 4096;  // many small WAL extents
  auto store = std::make_unique<cloud::CloudStore>(copts);
  ClusterOptions opts;
  opts.partitions = 1;
  opts.followers_per_partition = 2;
  opts.flush_group_pages = 8;
  Bg3Cluster cluster(store.get(), opts);

  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(cluster.Put(Key(i), "v" + std::to_string(i)).ok());
  }
  // Followers consume the log; leader checkpoints.
  for (int i = 0; i < 2000; i += 97) {
    ASSERT_TRUE(cluster.Get(Key(i)).ok());
  }
  ASSERT_TRUE(cluster.FlushAll().ok());
  (void)cluster.follower(0, 0)->PollWal();
  (void)cluster.follower(0, 1)->PollWal();

  const size_t freed = cluster.TruncateWal(0);
  EXPECT_GT(freed, 0u);

  // Existing followers unaffected.
  for (int i = 0; i < 2000; i += 53) {
    EXPECT_EQ(cluster.Get(Key(i)).value(), "v" + std::to_string(i)) << i;
  }
  // A brand-new follower bootstraps from the manifest despite the missing
  // WAL prefix.
  RoNodeOptions ro;
  ro.wal_stream = store->CreateStream("cluster-p0-wal");  // existing id
  RoNode fresh(store.get(), ro);
  for (int i = 0; i < 2000; i += 71) {
    EXPECT_EQ(fresh.Get(1, Key(i)).value(), "v" + std::to_string(i)) << i;
  }
  // Leader recovery also works from the truncated WAL.
  ASSERT_TRUE(cluster.CrashAndRecoverLeader(0).ok());
  for (int i = 0; i < 2000; i += 131) {
    EXPECT_EQ(cluster.GetFromLeader(Key(i)).value(), "v" + std::to_string(i));
  }
}

TEST(ClusterTest, TruncationBlockedByLaggingFollower) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 4096;
  auto store = std::make_unique<cloud::CloudStore>(copts);
  ClusterOptions opts;
  opts.partitions = 1;
  opts.followers_per_partition = 2;
  Bg3Cluster cluster(store.get(), opts);
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(cluster.Put(Key(i), "v").ok());
  ASSERT_TRUE(cluster.FlushAll().ok());
  // Only follower 0 polls; follower 1 never did -> truncation refuses.
  (void)cluster.follower(0, 0)->PollWal();
  EXPECT_EQ(cluster.TruncateWal(0), 0u);
}

// --- fault matrix: every leader crashes and recovers under each injected
// substrate failure mode, with followers serving throughout. No
// acknowledged write may be lost anywhere in the topology.

class ClusterFaultMatrixTest
    : public ::testing::TestWithParam<cloud::FaultClass> {};

TEST_P(ClusterFaultMatrixTest, EveryLeaderRecoversAndFollowersConverge) {
  const cloud::FaultClass cls = GetParam();
  const std::string name =
      std::string("ClusterFaultMatrix/") + cloud::FaultClassName(cls);
  cloud::FaultInjectorOptions fopts;
  fopts.seed = test::AnnouncedSeed(name.c_str(),
                                   0xC1A57E + static_cast<uint64_t>(cls));
  ClusterOptions copts;
  copts.partitions = 2;
  copts.followers_per_partition = 2;
  copts.max_leaf_entries = 32;
  copts.flush_group_pages = 8;
  switch (cls) {
    case cloud::FaultClass::kTransientError:
      fopts.transient_error_p = 0.02;
      break;
    case cloud::FaultClass::kLatencySpike:
      fopts.latency_spike_p = 0.20;
      break;
    case cloud::FaultClass::kTornAppend:
      fopts.torn_append_p = 0.02;
      break;
    case cloud::FaultClass::kCorruptRead:
      // Storage reads are the rarest op in this topology (leaders serve
      // from memory): a higher rate makes sure the class fires, and a
      // deeper budget keeps exhaustion negligible (0.15^6).
      fopts.corrupt_read_p = 0.15;
      copts.tree_retry.max_attempts = 6;
      copts.wal.retry.max_attempts = 6;
      copts.ro.retry.max_attempts = 6;
      break;
  }
  cloud::FaultInjector fi(fopts);
  auto store = std::make_unique<cloud::CloudStore>();
  Bg3Cluster cluster(store.get(), copts);
  store->SetFaultInjector(&fi);

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.Put(Key(i), "v" + std::to_string(i)).ok())
        << "i=" << i << " " << fi.ToString();
  }
  for (int p = 0; p < cluster.partitions(); ++p) {
    ASSERT_TRUE(cluster.CrashAndRecoverLeader(p).ok())
        << "partition " << p << " " << fi.ToString();
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(cluster.GetFromLeader(Key(i)).value(), "v" + std::to_string(i))
        << "i=" << i << " " << fi.ToString();
    EXPECT_EQ(cluster.Get(Key(i)).value(), "v" + std::to_string(i))
        << "i=" << i << " " << fi.ToString();
  }
  // Writes continue under the same fault schedule after recovery.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.Put(Key(i), "v2").ok())
        << "i=" << i << " " << fi.ToString();
    EXPECT_EQ(cluster.Get(Key(i)).value(), "v2") << fi.ToString();
  }
  EXPECT_GT(store->stats().injected_faults.Get(), 0u)
      << "matrix must actually exercise " << cloud::FaultClassName(cls);
  EXPECT_EQ(store->stats().retry_exhausted.Get(), 0u) << fi.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultClasses, ClusterFaultMatrixTest,
    ::testing::Values(cloud::FaultClass::kTransientError,
                      cloud::FaultClass::kLatencySpike,
                      cloud::FaultClass::kTornAppend,
                      cloud::FaultClass::kCorruptRead),
    [](const ::testing::TestParamInfo<cloud::FaultClass>& info) {
      return cloud::FaultClassName(info.param);
    });

TEST(ClusterTest, ConcurrentWritersAndFollowerReaders) {
  ClusterFixture f(/*partitions=*/2, /*followers=*/2);
  std::thread writer([&] {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(f.cluster->Put(Key(i), std::to_string(i)).ok());
    }
  });
  std::thread reader([&] {
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 1000; i += 37) {
        auto v = f.cluster->Get(Key(i));
        if (v.ok()) {
          EXPECT_EQ(v.value(), std::to_string(i));
        }
      }
    }
  });
  writer.join();
  reader.join();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(f.cluster->Get(Key(i)).value(), std::to_string(i)) << i;
  }
}

}  // namespace
}  // namespace bg3::replication
