// Failover suite (DESIGN.md §5.10): term-fenced appends, epoch-record CAS
// promotion, zombie-leader drain, cluster promotion / rolling restart, the
// checkpoint-cadence autotuner, and the seeded chaos harness. The
// `failover-smoke` CI job runs everything here under asan and tsan
// (`ctest -L failover`).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/cloud_store.h"
#include "cloud/fault_injector.h"
#include "common/debug_server.h"
#include "common/time_source.h"
#include "replication/chaos.h"
#include "replication/checkpoint.h"
#include "replication/cluster.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"
#include "test_seed.h"
#include "wal/reader.h"
#include "wal/record.h"
#include "wal/writer.h"

namespace bg3::replication {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

wal::WalRecord Mutation(bwtree::Lsn lsn, const std::string& key,
                        const std::string& value) {
  wal::WalRecord r;
  r.type = wal::WalRecord::Type::kMutation;
  r.tree_id = 1;
  r.page_id = 7;
  r.lsn = lsn;
  r.entry = {bwtree::DeltaOp::kUpsert, key, value};
  return r;
}

// --- stream-level term fencing ------------------------------------------------

TEST(StreamFencingTest, AppendFencedRejectsStaleTerms) {
  cloud::CloudStore store;
  const cloud::StreamId s = store.CreateStream("wal");
  // Unfenced: any term passes, term is not interpreted.
  ASSERT_TRUE(store.AppendFenced(s, 1, "a").ok());
  ASSERT_TRUE(store.AppendFenced(s, 99, "b").ok());

  store.FenceStream(s, 5);
  EXPECT_EQ(store.StreamFenceTerm(s), 5u);
  EXPECT_TRUE(store.AppendFenced(s, 4, "stale").status().IsFenced());
  EXPECT_TRUE(store.AppendFenced(s, 5, "exact").ok());
  EXPECT_TRUE(store.AppendFenced(s, 6, "newer").ok());
  // Term 0 marks a legacy (pre-fencing) writer: rejected once fenced.
  EXPECT_TRUE(store.AppendFenced(s, 0, "legacy").status().IsFenced());
  // Plain appends never participate in fencing (page-flush / GC streams).
  EXPECT_TRUE(store.Append(s, "plain").ok());

  // The fence only ratchets up.
  store.FenceStream(s, 3);
  EXPECT_EQ(store.StreamFenceTerm(s), 5u);
  store.FenceStream(s, 8);
  EXPECT_EQ(store.StreamFenceTerm(s), 8u);
  EXPECT_TRUE(store.AppendFenced(s, 5, "now stale").status().IsFenced());
}

TEST(StreamFencingTest, FencedRejectionIsNotRetryableAndNotABreakerError) {
  cloud::CloudStore store;
  const cloud::StreamId s = store.CreateStream("wal");
  store.FenceStream(s, 10);
  const Status fenced = store.AppendFenced(s, 2, "x").status();
  ASSERT_TRUE(fenced.IsFenced());
  EXPECT_FALSE(IsRetryableError(RetryOptions{}, fenced));
  // A healthy substrate correctly rejecting a deposed writer must not open
  // the circuit breaker: hammer the fence, then check a fresh stream works.
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(store.AppendFenced(s, 2, "x").status().IsFenced());
  }
  EXPECT_TRUE(store.Append(store.CreateStream("other"), "ok").ok());
}

// --- epoch records ------------------------------------------------------------

TEST(EpochRecordTest, PublishAndLoadRoundTrip) {
  cloud::CloudStore store;
  const std::string scope = "wal7";
  EXPECT_TRUE(LoadEpochRecord(&store, scope).status().IsNotFound());

  auto first = PublishEpochRecord(&store, scope, 5, 7);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().epoch, 1u);
  EXPECT_EQ(first.value().term, 5u);

  auto second = PublishEpochRecord(&store, scope, 9, 7);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().epoch, 2u);

  auto loaded = LoadEpochRecord(&store, scope);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().epoch, 2u);
  EXPECT_EQ(loaded.value().term, 9u);
  EXPECT_EQ(loaded.value().wal_stream, 7u);

  // A promotion whose term is not strictly newer loses outright.
  EXPECT_TRUE(PublishEpochRecord(&store, scope, 9, 7).status().IsAborted());
  EXPECT_TRUE(PublishEpochRecord(&store, scope, 3, 7).status().IsAborted());
  // The durable record is untouched by the losers.
  EXPECT_EQ(LoadEpochRecord(&store, scope).value().term, 9u);
}

TEST(EpochRecordTest, TornHeadFallsBackToSlot) {
  cloud::CloudStore store;
  const std::string scope = "wal3";
  ASSERT_TRUE(PublishEpochRecord(&store, scope, 4, 3).ok());
  ASSERT_TRUE(PublishEpochRecord(&store, scope, 6, 3).ok());
  // Garble the head: CRC framing catches it and the loader probes slots.
  store.ManifestPut(EpochHeadKey(scope), "torn garbage");
  auto loaded = LoadEpochRecord(&store, scope);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().term, 6u);
  EXPECT_EQ(loaded.value().epoch, 2u);
}

TEST(EpochRecordTest, ConcurrentPromotersHaveExactlyOneWinnerPerRound) {
  // N racing promoters, each with a distinct term, all starting from the
  // same loaded epoch: the slot CAS picks winners; losers get Aborted and
  // never clobber a winner's record.
  cloud::CloudStore store;
  const std::string scope = "wal1";
  constexpr int kThreads = 4;
  std::vector<Status> results(kThreads, Status::OK());
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        results[t] =
            PublishEpochRecord(&store, scope, 10 + t, 1).status();
      });
    }
    for (auto& th : threads) th.join();
  }
  int wins = 0;
  uint64_t max_won_term = 0;
  for (int t = 0; t < kThreads; ++t) {
    if (results[t].ok()) {
      ++wins;
      max_won_term = std::max(max_won_term, static_cast<uint64_t>(10 + t));
    } else {
      EXPECT_TRUE(results[t].IsAborted()) << results[t].ToString();
    }
  }
  ASSERT_GE(wins, 1);
  auto loaded = LoadEpochRecord(&store, scope);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().term, max_won_term);
}

// --- writer-side fencing ------------------------------------------------------

TEST(WalWriterFencingTest, DeposedWriterSurfacesFencedAndDrains) {
  cloud::CloudStore store;
  wal::WalWriterOptions w;
  w.stream = store.CreateStream("wal");
  w.group_window_us = 0;
  wal::WalWriter writer(&store, w);
  ASSERT_TRUE(writer.Append(Mutation(1, "a", "1")).ok());
  EXPECT_FALSE(writer.fenced());

  // Promotion elsewhere: the stream moves past this writer's term.
  store.FenceStream(w.stream, writer.term() + 1);

  const Status s = writer.Append(Mutation(2, "b", "2"));
  ASSERT_TRUE(s.IsFenced()) << s.ToString();
  EXPECT_TRUE(writer.fenced());
  EXPECT_GE(writer.fenced_appends(), 1u);
  EXPECT_GE(writer.zombie_drained(), 1u);
  // Drained, not parked: nothing left buffered, nothing acknowledged.
  EXPECT_EQ(writer.BufferedRecords(), 0u);
  EXPECT_EQ(writer.committed_records(), 1u);
  // The latch is permanent.
  EXPECT_TRUE(writer.Append(Mutation(3, "c", "3")).IsFenced());
  EXPECT_TRUE(writer.Flush().IsFenced());
}

TEST(WalWriterFencingTest, ParkedRetryBatchesDrainWhenKickedIntoTheFence) {
  // The zombie-with-parked-batches race: a batch fails (transient error,
  // retry budget exhausted) and parks; the promotion fences the stream
  // while it sits parked; the zombie's next Flush re-kicks it (KickParked)
  // straight into the fence. It must drain — not retry forever, not ack.
  cloud::CloudStore store;
  cloud::FaultInjector injector;
  wal::WalWriterOptions w;
  w.stream = store.CreateStream("wal");
  w.group_window_us = 0;
  w.retry.max_attempts = 1;
  wal::WalWriter writer(&store, w);
  ASSERT_TRUE(writer.Append(Mutation(1, "a", "1")).ok());

  store.SetFaultInjector(&injector);
  injector.ArmNext(cloud::FaultOp::kAppend, cloud::FaultClass::kTransientError);
  const Status failed = writer.Append(Mutation(2, "b", "2"));
  ASSERT_FALSE(failed.ok());
  ASSERT_FALSE(failed.IsFenced());  // parked on IOError, not yet deposed
  EXPECT_EQ(writer.BufferedRecords(), 1u);

  store.FenceStream(w.stream, writer.term() + 1);
  const Status flushed = writer.Flush();
  ASSERT_TRUE(flushed.IsFenced()) << flushed.ToString();
  EXPECT_TRUE(writer.fenced());
  EXPECT_EQ(writer.BufferedRecords(), 0u);
  EXPECT_GE(writer.zombie_drained(), 1u);
  EXPECT_EQ(writer.committed_records(), 1u);  // the parked batch never acked
}

// --- reader-side epoch boundary -----------------------------------------------

TEST(WalReaderFencingTest, AdvanceTermDropsStaleHeldBatches) {
  cloud::CloudStore store;
  const cloud::StreamId s = store.CreateStream("wal");
  // Term 5's seq 2 lands physically but seq 1 never will (its append was
  // fenced mid-flight): a strict reader holds seq 2 in the gap map.
  ASSERT_TRUE(
      store.Append(s, wal::EncodeFramedBatch(5, 2, {Mutation(2, "b", "2")}))
          .ok());
  wal::WalReader reader(&store, s);
  reader.SeekTo(wal::WalCursor{});  // strict: expect term to open at seq 1
  auto polled = reader.Poll();
  ASSERT_TRUE(polled.ok());
  EXPECT_TRUE(polled.value().empty());
  EXPECT_EQ(reader.batches_held(), 1u);

  // The promotion publishes term 6: the hold is permanently stale.
  reader.AdvanceTerm(6);
  EXPECT_EQ(reader.batches_held(), 0u);
  EXPECT_GE(reader.batches_deduped(), 1u);

  // The new leader's first batch delivers immediately — no gap outstanding.
  ASSERT_TRUE(
      store.Append(s, wal::EncodeFramedBatch(6, 1, {Mutation(3, "c", "3")}))
          .ok());
  polled = reader.Poll();
  ASSERT_TRUE(polled.ok());
  ASSERT_EQ(polled.value().size(), 1u);
  EXPECT_EQ(polled.value()[0].entry.key, "c");

  // A late-landing duplicate from the dead term is deduped on sight, never
  // parked.
  ASSERT_TRUE(
      store.Append(s, wal::EncodeFramedBatch(5, 1, {Mutation(1, "a", "1")}))
          .ok());
  polled = reader.Poll();
  ASSERT_TRUE(polled.ok());
  EXPECT_TRUE(polled.value().empty());
  EXPECT_EQ(reader.batches_held(), 0u);

  // Idempotent; lower terms ignored.
  reader.AdvanceTerm(6);
  reader.AdvanceTerm(2);
  ASSERT_TRUE(
      store.Append(s, wal::EncodeFramedBatch(6, 2, {Mutation(4, "d", "4")}))
          .ok());
  polled = reader.Poll();
  ASSERT_TRUE(polled.ok());
  ASSERT_EQ(polled.value().size(), 1u);
}

// --- cluster promotion --------------------------------------------------------

struct FailoverFixture {
  explicit FailoverFixture(int partitions = 2, int followers = 2,
                           bool checkpointing = false) {
    store = std::make_unique<cloud::CloudStore>();
    ClusterOptions opts;
    opts.partitions = partitions;
    opts.followers_per_partition = followers;
    opts.max_leaf_entries = 32;
    opts.flush_group_pages = 8;
    opts.checkpointing = checkpointing;
    cluster = std::make_unique<Bg3Cluster>(store.get(), opts);
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<Bg3Cluster> cluster;
};

TEST(ClusterFailoverTest, PromotionKeepsEveryAckedWrite) {
  FailoverFixture f;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  std::vector<uint64_t> terms_before;
  for (int p = 0; p < f.cluster->partitions(); ++p) {
    terms_before.push_back(f.cluster->term(p));
    ASSERT_TRUE(f.cluster->PromoteFollower(p, 0).ok()) << "partition " << p;
  }
  EXPECT_EQ(f.cluster->promotions(), 2u);
  for (int p = 0; p < f.cluster->partitions(); ++p) {
    EXPECT_GT(f.cluster->term(p), terms_before[p]) << "partition " << p;
    EXPECT_NE(f.cluster->zombie(p), nullptr);
  }
  // Zero acknowledged-write loss across the failover, on both read paths.
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(f.cluster->Get(Key(i)).value(), "v" + std::to_string(i)) << i;
    EXPECT_EQ(f.cluster->GetFromLeader(Key(i)).value(),
              "v" + std::to_string(i))
        << i;
  }
  // The new leaders accept writes at the new term.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), "v2").ok());
    EXPECT_EQ(f.cluster->Get(Key(i)).value(), "v2") << i;
  }
}

TEST(ClusterFailoverTest, ZombieWritesAreFencedAndNeverVisible) {
  FailoverFixture f(/*partitions=*/1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), "good").ok());
  }
  ASSERT_TRUE(f.cluster->PromoteFollower(0, 0).ok());
  RwNode* zombie = f.cluster->zombie(0);
  ASSERT_NE(zombie, nullptr);

  // The deposed leader resumes and tries to write: the WAL rejects its
  // batches, so no follower (and no future node) ever sees them.
  const uint64_t errors_before = zombie->wal_append_errors();
  BG3_IGNORE_STATUS(zombie->Put(Key(0), "poison"));
  BG3_IGNORE_STATUS(zombie->wal_writer()->Flush());
  EXPECT_TRUE(zombie->wal_writer()->fenced());
  EXPECT_GT(zombie->wal_append_errors() + zombie->writes_shed(),
            errors_before);
  EXPECT_GE(f.cluster->fenced_appends(), 1u);
  EXPECT_GE(f.cluster->zombie_drained(), 1u);
  EXPECT_EQ(f.cluster->Get(Key(0)).value(), "good");
  EXPECT_EQ(f.cluster->GetFromLeader(Key(0)).value(), "good");

  // Reaping folds the zombie's counters into the cluster totals.
  const uint64_t fenced_total = f.cluster->fenced_appends();
  f.cluster->ReapZombie(0);
  EXPECT_EQ(f.cluster->zombie(0), nullptr);
  EXPECT_EQ(f.cluster->fenced_appends(), fenced_total);
}

TEST(ClusterFailoverTest, HealthReportsRolesTermsAndCursors) {
  FailoverFixture f(/*partitions=*/2, /*followers=*/2);
  ASSERT_TRUE(f.cluster->Put(Key(1), "v").ok());
  ASSERT_TRUE(f.cluster->PromoteFollower(0, 0).ok());

  auto health = f.cluster->Health();
  ASSERT_EQ(health.size(), 2u);
  ASSERT_GE(health[0].nodes.size(), 4u);  // leader + 2 followers + zombie
  EXPECT_EQ(health[0].nodes[0].role, "leader");
  EXPECT_EQ(health[0].nodes[0].term, f.cluster->term(0));
  EXPECT_EQ(health[0].nodes.back().role, "zombie");
  EXPECT_LT(health[0].nodes.back().term, health[0].nodes[0].term);

  const std::string json = f.cluster->HealthJson();
  EXPECT_NE(json.find("\"partitions\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"role\": \"leader\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"role\": \"follower\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"role\": \"zombie\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"term\": "), std::string::npos) << json;
  EXPECT_NE(json.find("\"committed\": "), std::string::npos) << json;

  // The cluster self-registers with the debug server: /healthz embeds the
  // same per-partition report, and destruction unregisters it.
  const std::string healthz = DebugServer::HandleRequest("/healthz");
  EXPECT_NE(healthz.find("\"status\": \"ok\""), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"partitions\": ["), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"role\": \"zombie\""), std::string::npos)
      << healthz;
  f.cluster.reset();
  const std::string after = DebugServer::HandleRequest("/healthz");
  EXPECT_EQ(after.find("\"partitions\""), std::string::npos) << after;
}

TEST(ClusterFailoverTest, FreshFollowerBootstrapsAcrossTheEpochBoundary) {
  // A follower starts its checkpoint SeekTo against the old term's manifest
  // while a promotion lands: its first poll crosses the epoch boundary and
  // must deliver the new term's batches without replaying stale ones.
  FailoverFixture f(/*partitions=*/1, /*followers=*/2,
                    /*checkpointing=*/true);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), "v1").ok());
  }
  ASSERT_TRUE(f.cluster->checkpointer(0)->CheckpointNow().ok());

  // Replace follower 1 but do NOT read from it: it stays unbootstrapped,
  // holding only the pre-promotion manifest to seek from.
  ASSERT_TRUE(f.cluster->RestartFollower(0, 1).ok());
  // Promotion via follower 0 happens while follower 1 is mid-bootstrap.
  ASSERT_TRUE(f.cluster->PromoteFollower(0, 0).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), "v2").ok());
  }
  // Follower 1's first read bootstraps now — old-term manifest, new-term
  // suffix — and must see every post-promotion write.
  RoNode* late = f.cluster->follower(0, 1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(late->Get(1, Key(i)).value(), "v2") << i;
  }
  EXPECT_TRUE(late->ResumedFromCheckpoint());
}

TEST(ClusterFailoverTest, SequentialPromotionsStrictlyRaiseTheTerm) {
  FailoverFixture f(/*partitions=*/1);
  ASSERT_TRUE(f.cluster->Put(Key(1), "v").ok());
  uint64_t prev = f.cluster->term(0);
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(f.cluster->PromoteFollower(0, round % 2).ok()) << round;
    EXPECT_GT(f.cluster->term(0), prev) << round;
    prev = f.cluster->term(0);
    EXPECT_EQ(f.cluster->Get(Key(1)).value(), "v") << round;
    ASSERT_TRUE(f.cluster->Put(Key(1), "v").ok());
  }
  EXPECT_EQ(f.cluster->promotions(), 3u);
  // The durable epoch record tracked every round.
  auto rec = LoadEpochRecord(
      f.store.get(), WalEpochScope(f.store->CreateStream("cluster-p0-wal")));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().epoch, 3u);
  EXPECT_EQ(rec.value().term, f.cluster->term(0));
}

// --- rolling restart ----------------------------------------------------------

TEST(RollingRestartTest, FollowerRestartPreWarmsFromPeerResidentSet) {
  FailoverFixture f(/*partitions=*/1, /*followers=*/2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), "v").ok());
  }
  // Warm both followers' caches through reads.
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(f.cluster->Get(Key(i)).ok());
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(f.cluster->Get(Key(i)).ok());
  ASSERT_GT(f.cluster->follower(0, 1)->CachedPageCount(), 0u);

  ASSERT_TRUE(f.cluster->RestartFollower(0, 0).ok());
  // The replacement is warm before serving a single read: its pages came
  // from the peer's resident set, not from demand misses.
  EXPECT_GT(f.cluster->follower(0, 0)->CachedPageCount(), 0u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(f.cluster->Get(Key(i)).value(), "v") << i;
  }
}

TEST(RollingRestartTest, WholeClusterSurvivesARollingRestart) {
  FailoverFixture f(/*partitions=*/2, /*followers=*/2,
                    /*checkpointing=*/true);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 400; i += 7) ASSERT_TRUE(f.cluster->Get(Key(i)).ok());
  std::vector<uint64_t> terms_before;
  for (int p = 0; p < f.cluster->partitions(); ++p) {
    terms_before.push_back(f.cluster->term(p));
    ASSERT_TRUE(f.cluster->checkpointer(p)->CheckpointNow().ok());
  }

  ASSERT_TRUE(f.cluster->RollingRestart().ok());

  EXPECT_EQ(f.cluster->promotions(),
            static_cast<uint64_t>(f.cluster->partitions()));
  for (int p = 0; p < f.cluster->partitions(); ++p) {
    EXPECT_GT(f.cluster->term(p), terms_before[p]) << "partition " << p;
    EXPECT_EQ(f.cluster->zombie(p), nullptr) << "partition " << p;
  }
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(f.cluster->Get(Key(i)).value(), "v" + std::to_string(i)) << i;
  }
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(f.cluster->Put(Key(i), "v2").ok());
  }
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(f.cluster->Get(Key(i)).value(), "v2") << i;
  }
}

// --- checkpoint-cadence autotuning --------------------------------------------

TEST(CheckpointAutotuneTest, RuleDerivesIntervalFromObservedRate) {
  CheckpointerOptions opts;
  opts.target_suffix_replay_bytes = 1000;
  opts.min_interval_ms = 2;
  opts.max_interval_ms = 500;
  // 1000 bytes over 1 second = 1 byte/ms; 1000-byte target -> 1000 ms,
  // clamped to max.
  EXPECT_EQ(AutotuneCheckpointIntervalMs(opts, 1000, 1'000'000, 20), 500u);
  // 100x the rate -> 10 ms.
  EXPECT_EQ(AutotuneCheckpointIntervalMs(opts, 100'000, 1'000'000, 20), 10u);
  // Absurd rate clamps at the floor.
  EXPECT_EQ(AutotuneCheckpointIntervalMs(opts, 100'000'000, 1'000'000, 20),
            2u);
  // No observation (idle stream or zero elapsed) -> fallback, clamped.
  EXPECT_EQ(AutotuneCheckpointIntervalMs(opts, 0, 1'000'000, 20), 20u);
  EXPECT_EQ(AutotuneCheckpointIntervalMs(opts, 1000, 0, 20), 20u);
  EXPECT_EQ(AutotuneCheckpointIntervalMs(opts, 0, 0, 9999), 500u);
  // Autotuning off -> fallback untouched.
  CheckpointerOptions off;
  off.target_suffix_replay_bytes = 0;
  EXPECT_EQ(AutotuneCheckpointIntervalMs(off, 1'000'000, 1'000'000, 20), 20u);
}

TEST(CheckpointAutotuneTest, CheckpointerDerivesCadenceFromManualClock) {
  cloud::CloudStore store;
  RwNodeOptions node;
  node.tree.tree_id = 1;
  node.tree.max_leaf_entries = 16;
  node.tree.base_stream = store.CreateStream("base");
  node.tree.delta_stream = store.CreateStream("delta");
  node.wal.stream = store.CreateStream("wal");
  node.flush_group_pages = 1'000'000;
  node.flush_group_mutations = 1'000'000'000;
  RwNode rw(&store, node);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rw.Put(Key(i), "warmup").ok());
  }

  ManualTimeSource clock;
  clock.SetUs(1'000'000);
  CheckpointerOptions copts;
  copts.interval_ms = 50;
  copts.target_suffix_replay_bytes = 1 << 20;
  copts.min_interval_ms = 1;
  copts.max_interval_ms = 400;
  copts.time_source = &clock;
  Checkpointer ckpt(&store, &rw, copts);
  EXPECT_EQ(ckpt.effective_interval_ms(), 50u);  // no observation yet

  // The checkpointer sampled (t0, bytes0) at construction; everything
  // appended from here on is the observed rate.
  const uint64_t bytes0 = store.TotalBytes(node.wal.stream);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(rw.Put(Key(i), std::string(64, 'x')).ok());
  }
  clock.AdvanceUs(2'000'000);
  ASSERT_TRUE(ckpt.CheckpointNow().ok());

  const uint64_t observed = store.TotalBytes(node.wal.stream) - bytes0;
  ASSERT_GT(observed, 0u);
  const uint64_t expected =
      AutotuneCheckpointIntervalMs(copts, observed, 2'000'000, 50);
  EXPECT_EQ(ckpt.effective_interval_ms(), expected);
  EXPECT_NE(ckpt.effective_interval_ms(), 50u)
      << "pick rates so the derived cadence differs from the seed value";

  // Idle window: the next publish observes ~no bytes and keeps the cadence
  // rather than flailing to the max.
  clock.AdvanceUs(1'000'000);
  ASSERT_TRUE(ckpt.CheckpointNow().ok());
  EXPECT_EQ(ckpt.effective_interval_ms(), expected);
}

// --- chaos harness ------------------------------------------------------------

TEST(ChaosScheduleTest, SameSeedSameSchedule) {
  ChaosOptions opts;
  opts.seed = 0xFEED;
  opts.steps = 200;
  const auto a = GenerateChaosSchedule(opts);
  const auto b = GenerateChaosSchedule(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].partition, b[i].partition) << i;
    EXPECT_EQ(a[i].key, b[i].key) << i;
  }
  opts.seed = 0xBEEF;
  const auto c = GenerateChaosSchedule(opts);
  size_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff += (a[i].kind != c[i].kind || a[i].key != c[i].key) ? 1 : 0;
  }
  EXPECT_GT(diff, 0u);
}

// The three fixed seeds the failover-smoke CI job pins. Keep in sync with
// .github/workflows/ci.yml.
class ChaosSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSeedTest, LinearizableAcrossKillPromoteZombieResume) {
  ChaosOptions opts;
  opts.seed = test::AnnouncedSeed("ChaosSeed", GetParam());
  opts.steps = 400;
  auto report = RunChaos(opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ChaosReport& r = report.value();
  SCOPED_TRACE(r.ToString());
  EXPECT_GT(r.puts_acked, 0u);
  EXPECT_GT(r.promotions, 0u);
  EXPECT_GT(r.verified_keys, 0u);
  EXPECT_GT(r.final_term, 0u);
  // Every zombie the schedule resurrected was isolated by the fence.
  EXPECT_EQ(r.zombie_writes_rejected, r.zombie_resumes);
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, ChaosSeedTest,
                         ::testing::Values(0xB64001ull, 0xB64002ull,
                                           0xB64003ull));

TEST(ChaosSeedTest, SubstrateFaultsUnderneathNodeChaos) {
  ChaosOptions opts;
  opts.seed = test::AnnouncedSeed("ChaosSubstrate", 0xB64004ull);
  opts.steps = 250;
  opts.transient_error_p = 0.01;
  auto report = RunChaos(opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().puts_acked, 0u);
}

}  // namespace
}  // namespace bg3::replication
