// Property-based tests: a BwTree under randomized workloads must behave
// exactly like a std::map reference model, across every combination of
// delta mode, consolidation threshold and leaf size.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/random.h"

namespace bg3::bwtree {
namespace {

struct PropertyParam {
  DeltaMode mode;
  uint32_t consolidate_threshold;
  size_t max_leaf_entries;
  FlushMode flush_mode;
};

std::string ParamName(const testing::TestParamInfo<PropertyParam>& info) {
  const PropertyParam& p = info.param;
  std::string name = p.mode == DeltaMode::kTraditional ? "trad" : "readopt";
  name += "_c" + std::to_string(p.consolidate_threshold);
  name += "_l" + std::to_string(p.max_leaf_entries);
  name += p.flush_mode == FlushMode::kSync ? "_sync" : "_deferred";
  return name;
}

class BwTreeModelTest : public testing::TestWithParam<PropertyParam> {
 protected:
  void SetUp() override {
    cloud::CloudStoreOptions copts;
    copts.extent_capacity = 1 << 14;
    store_ = std::make_unique<cloud::CloudStore>(copts);
    BwTreeOptions opts;
    opts.delta_mode = GetParam().mode;
    opts.consolidate_threshold = GetParam().consolidate_threshold;
    opts.max_leaf_entries = GetParam().max_leaf_entries;
    opts.flush_mode = GetParam().flush_mode;
    opts.base_stream = store_->CreateStream("base");
    opts.delta_stream = store_->CreateStream("delta");
    tree_ = std::make_unique<BwTree>(store_.get(), opts);
  }

  static std::string RandomKey(Random* rng, int key_space) {
    return "key" + std::to_string(rng->Uniform(key_space));
  }

  std::unique_ptr<cloud::CloudStore> store_;
  std::unique_ptr<BwTree> tree_;
};

TEST_P(BwTreeModelTest, RandomOpsMatchReferenceModel) {
  std::map<std::string, std::string> model;
  Random rng(GetParam().consolidate_threshold * 1000 +
             GetParam().max_leaf_entries);
  for (int i = 0; i < 3000; ++i) {
    const int action = static_cast<int>(rng.Uniform(10));
    const std::string key = RandomKey(&rng, 200);
    if (action < 6) {  // upsert
      const std::string value = "v" + std::to_string(rng.Next() % 1000);
      ASSERT_TRUE(tree_->Upsert(key, value).ok());
      model[key] = value;
    } else if (action < 8) {  // delete
      ASSERT_TRUE(tree_->Delete(key).ok());
      model.erase(key);
    } else if (action < 9) {  // point read
      auto got = tree_->Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key;
        EXPECT_EQ(got.value(), it->second);
      }
    } else {  // memory pressure: evict cold pages
      (void)tree_->EvictColdPages(rng.Uniform(4));
    }
  }
  // Full-content comparison via scan.
  std::vector<Entry> entries;
  ASSERT_TRUE(tree_->Scan({}, &entries).ok());
  ASSERT_EQ(entries.size(), model.size());
  auto mit = model.begin();
  for (const Entry& e : entries) {
    EXPECT_EQ(e.key, mit->first);
    EXPECT_EQ(e.value, mit->second);
    ++mit;
  }
  EXPECT_EQ(tree_->CountEntries(), model.size());
}

TEST_P(BwTreeModelTest, RangeScansMatchReferenceModel) {
  std::map<std::string, std::string> model;
  Random rng(99);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = RandomKey(&rng, 500);
    ASSERT_TRUE(tree_->Upsert(key, key + "-v").ok());
    model[key] = key + "-v";
  }
  for (int trial = 0; trial < 20; ++trial) {
    std::string lo = RandomKey(&rng, 500);
    std::string hi = RandomKey(&rng, 500);
    if (hi < lo) std::swap(lo, hi);
    std::vector<Entry> out;
    BwTree::ScanOptions scan;
    scan.start_key = lo;
    scan.end_key = hi;
    ASSERT_TRUE(tree_->Scan(scan, &out).ok());
    std::vector<std::pair<std::string, std::string>> expected(
        model.lower_bound(lo), model.lower_bound(hi));
    ASSERT_EQ(out.size(), expected.size()) << lo << ".." << hi;
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].key, expected[i].first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BwTreeModelTest,
    testing::Values(
        PropertyParam{DeltaMode::kTraditional, 4, 32, FlushMode::kSync},
        PropertyParam{DeltaMode::kTraditional, 10, 128, FlushMode::kSync},
        PropertyParam{DeltaMode::kTraditional, 2, 8, FlushMode::kSync},
        PropertyParam{DeltaMode::kReadOptimized, 4, 32, FlushMode::kSync},
        PropertyParam{DeltaMode::kReadOptimized, 10, 128, FlushMode::kSync},
        PropertyParam{DeltaMode::kReadOptimized, 2, 8, FlushMode::kSync},
        PropertyParam{DeltaMode::kReadOptimized, 10, 64, FlushMode::kDeferred},
        PropertyParam{DeltaMode::kTraditional, 10, 64, FlushMode::kDeferred}),
    ParamName);

// Zero-cache reads must agree with the model too (every read reassembles
// the page from storage images).
class ZeroCacheModelTest : public testing::TestWithParam<PropertyParam> {};

TEST_P(ZeroCacheModelTest, StorageImagesMatchMemory) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 1 << 14;
  cloud::CloudStore store(copts);
  BwTreeOptions opts;
  opts.delta_mode = GetParam().mode;
  opts.consolidate_threshold = GetParam().consolidate_threshold;
  opts.max_leaf_entries = GetParam().max_leaf_entries;
  opts.read_cache = ReadCacheMode::kNone;
  opts.base_stream = store.CreateStream("base");
  opts.delta_stream = store.CreateStream("delta");
  BwTree tree(&store, opts);

  std::map<std::string, std::string> model;
  Random rng(7);
  for (int i = 0; i < 1500; ++i) {
    const std::string key = "key" + std::to_string(rng.Uniform(100));
    if (rng.Uniform(10) < 7) {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(tree.Upsert(key, value).ok());
      model[key] = value;
    } else {
      ASSERT_TRUE(tree.Delete(key).ok());
      model.erase(key);
    }
  }
  for (int k = 0; k < 100; ++k) {
    const std::string key = "key" + std::to_string(k);
    auto got = tree.Get(key);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(got.status().IsNotFound()) << key;
    } else {
      ASSERT_TRUE(got.ok()) << key;
      EXPECT_EQ(got.value(), it->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZeroCacheModelTest,
    testing::Values(
        PropertyParam{DeltaMode::kTraditional, 6, 32, FlushMode::kSync},
        PropertyParam{DeltaMode::kReadOptimized, 6, 32, FlushMode::kSync},
        PropertyParam{DeltaMode::kTraditional, 12, 16, FlushMode::kSync},
        PropertyParam{DeltaMode::kReadOptimized, 12, 16, FlushMode::kSync}),
    ParamName);

}  // namespace
}  // namespace bg3::bwtree
