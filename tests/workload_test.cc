#include <gtest/gtest.h>

#include <memory>

#include "cloud/cloud_store.h"
#include "core/graph_db.h"
#include "workload/driver.h"
#include "workload/graph_gen.h"
#include "workload/workloads.h"

namespace bg3::workload {
namespace {

TEST(GraphGenTest, LoadsRequestedEdgeCount) {
  cloud::CloudStore store;
  core::GraphDBOptions db_opts;
  core::GraphDB db(&store, db_opts);
  GraphGenOptions opts;
  opts.num_sources = 100;
  opts.num_dests = 100;
  opts.num_edges = 2000;
  auto loaded = LoadGraph(&db, opts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), 2000u);
}

TEST(GraphGenTest, DegreesAreSkewed) {
  cloud::CloudStore store;
  core::GraphDBOptions db_opts;
  core::GraphDB db(&store, db_opts);
  GraphGenOptions opts;
  opts.num_sources = 1000;
  opts.num_dests = 1000;
  opts.num_edges = 5000;
  opts.zipf_theta = 0.9;
  ASSERT_TRUE(LoadGraph(&db, opts).ok());
  // Vertex 0 (the hottest Zipf item) must have far more out-edges than a
  // mid-range vertex.
  std::vector<graph::Neighbor> hot, cold;
  ASSERT_TRUE(db.GetNeighbors(0, opts.edge_type, 100000, &hot).ok());
  ASSERT_TRUE(db.GetNeighbors(500, opts.edge_type, 100000, &cold).ok());
  EXPECT_GT(hot.size(), cold.size() + 10);
}

TEST(GraphGenTest, MakePropertiesDeterministic) {
  EXPECT_EQ(MakeProperties(1, 32), MakeProperties(1, 32));
  EXPECT_NE(MakeProperties(1, 32), MakeProperties(2, 32));
  EXPECT_EQ(MakeProperties(1, 32).size(), 32u);
}

TEST(FollowWorkloadTest, MixMatchesConfiguration) {
  FollowWorkload::Options opts;
  opts.write_fraction = 0.01;
  FollowWorkload gen(opts, 7);
  int writes = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const Op op = gen.Next();
    if (op.type == Op::Type::kInsertEdge) {
      ++writes;
      EXPECT_NE(op.src, op.dst);
    } else {
      EXPECT_EQ(op.type, Op::Type::kOneHop);
    }
  }
  EXPECT_NEAR(writes / static_cast<double>(n), 0.01, 0.003);
}

TEST(RiskControlWorkloadTest, StrictOneToOneReadWrite) {
  RiskControlWorkload::Options opts;
  RiskControlWorkload gen(opts, 3);
  int writes = 0, reads = 0;
  for (int i = 0; i < 1000; ++i) {
    const Op op = gen.Next();
    if (op.type == Op::Type::kInsertEdge) {
      ++writes;
    } else {
      ASSERT_EQ(op.type, Op::Type::kReachCheck);
      EXPECT_GE(op.hops, opts.min_hops);
      EXPECT_LE(op.hops, opts.max_hops);
      ++reads;
    }
  }
  EXPECT_EQ(writes, 500);
  EXPECT_EQ(reads, 500);
}

TEST(RecommendWorkloadTest, HopDistributionMatchesTable1) {
  RecommendWorkload::Options opts;
  RecommendWorkload gen(opts, 5);
  int hops[4] = {0, 0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const Op op = gen.Next();
    ASSERT_TRUE(op.type == Op::Type::kOneHop || op.type == Op::Type::kMultiHop);
    ASSERT_GE(op.hops, 1);
    ASSERT_LE(op.hops, 3);
    ++hops[op.hops];
  }
  EXPECT_NEAR(hops[1] / static_cast<double>(n), 0.70, 0.01);
  EXPECT_NEAR(hops[2] / static_cast<double>(n), 0.20, 0.01);
  EXPECT_NEAR(hops[3] / static_cast<double>(n), 0.10, 0.01);
}

TEST(DriverTest, RunsAllOpsAcrossThreads) {
  cloud::CloudStore store;
  core::GraphDBOptions db_opts;
  core::GraphDB db(&store, db_opts);
  DriverOptions opts;
  opts.threads = 4;
  opts.ops_per_thread = 500;
  DriverResult result;
  RunWorkload(
      &db,
      [](int thread) {
        FollowWorkload::Options w;
        w.num_users = 1000;
        return std::make_unique<FollowWorkload>(w, 100 + thread);
      },
      opts, &result);
  EXPECT_EQ(result.ops, 2000u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.qps, 0.0);
}

TEST(DriverTest, LatencyHistogramWhenRequested) {
  cloud::CloudStore store;
  core::GraphDBOptions db_opts;
  core::GraphDB db(&store, db_opts);
  DriverOptions opts;
  opts.threads = 2;
  opts.ops_per_thread = 100;
  opts.record_latency = true;
  DriverResult result;
  RunWorkload(
      &db,
      [](int thread) {
        RecommendWorkload::Options w;
        w.num_users = 100;
        return std::make_unique<RecommendWorkload>(w, thread);
      },
      opts, &result);
  EXPECT_EQ(result.latency_us.Count(), 200u);
}

TEST(PartitionedEngineTest, RoutesBySourceVertex) {
  cloud::CloudStore s1, s2;
  core::GraphDBOptions db_opts;
  core::GraphDB db1(&s1, db_opts);
  core::GraphDB db2(&s2, db_opts);
  PartitionedEngine part({&db1, &db2});
  for (graph::VertexId v = 0; v < 100; ++v) {
    ASSERT_TRUE(part.AddEdge(v, 1, v + 1000, "p", 1).ok());
  }
  // Every edge is retrievable through the partitioned view.
  for (graph::VertexId v = 0; v < 100; ++v) {
    EXPECT_TRUE(part.GetEdge(v, 1, v + 1000).ok());
  }
  // And both partitions hold some share of the data.
  core::DbStats st1 = db1.Stats();
  core::DbStats st2 = db2.Stats();
  EXPECT_GT(st1.append_ops, 0u);
  EXPECT_GT(st2.append_ops, 0u);
}

}  // namespace
}  // namespace bg3::workload
