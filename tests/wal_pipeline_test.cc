// Property tests for the pipelined WAL (DESIGN.md §5.9): with latency
// spikes and transient errors permuting the completion order of parallel
// in-flight appends, acknowledgments still move strictly in log order, a
// crash leaves a contiguous committed prefix, and cursor-exact SeekTo
// replays exactly the suffix. Failing runs print their seed;
// BG3_TEST_SEED=<seed> replays them.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_store.h"
#include "cloud/fault_injector.h"
#include "common/random.h"
#include "test_seed.h"
#include "wal/reader.h"
#include "wal/record.h"
#include "wal/writer.h"

namespace bg3::wal {
namespace {

WalRecord Mutation(bwtree::Lsn lsn) {
  WalRecord r;
  r.type = WalRecord::Type::kMutation;
  r.tree_id = 1;
  r.page_id = lsn % 7;
  r.lsn = lsn;
  r.entry = {bwtree::DeltaOp::kUpsert, "k" + std::to_string(lsn),
             "v" + std::to_string(lsn)};
  return r;
}

/// Reads everything a fresh reader can deliver from the stream in strict
/// log order (null-cursor seek: the first term must open at seq 1, exactly
/// what an out-of-order physical stream needs).
std::vector<WalRecord> StrictReplay(cloud::CloudStore* store,
                                    cloud::StreamId stream) {
  // These properties are about what the writer left in the stream, not
  // about the reader's own fault handling — stop injecting before replay.
  store->SetFaultInjector(nullptr);
  WalReader reader(store, stream);
  reader.SeekTo(WalCursor{});
  std::vector<WalRecord> all;
  for (;;) {
    auto batch = reader.Poll();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    if (!batch.ok() || batch.value().empty()) break;
    for (auto& r : batch.value()) all.push_back(std::move(r));
  }
  return all;
}

/// `records` must be exactly lsns 1..records.size() in order — the
/// contiguous-prefix invariant (no loss inside the prefix, no duplicates,
/// no reordering).
void ExpectContiguousPrefix(const std::vector<WalRecord>& records,
                            uint64_t seed, int trial) {
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ(records[i].lsn, i + 1)
        << "seed=" << seed << " trial=" << trial << " at index " << i;
  }
}

WalWriterOptions PipelinedOptions(cloud::StreamId stream, Random& rng) {
  WalWriterOptions w;
  w.stream = stream;
  w.mode = WalWriterMode::kPipelined;
  w.commit_wait_on_seal = false;  // fully async enqueue.
  w.group_size = 1 + rng.Uniform(3);
  w.group_window_us = 0;
  w.inflight_appends = 2 + rng.Uniform(3);  // 2..4 parallel appends.
  w.retry.max_attempts = 6;  // transient_error_p^6: exhaustion ~never.
  // Sleep a slice of the simulated latency for real, so a latency spike
  // genuinely delays one in-flight append past its successors — the
  // completion-order permutation these properties are about.
  w.wall_latency_scale = 0.02;
  return w;
}

cloud::FaultInjectorOptions SpikyFaults(Random& rng) {
  cloud::FaultInjectorOptions fopts;
  fopts.seed = rng.Next();
  fopts.latency_spike_p = 0.35;
  fopts.latency_spike_us = 20'000;
  fopts.transient_error_p = 0.05;
  return fopts;
}

// Acknowledgment order is log order, never completion order: whatever the
// spikes do to which append lands first, WaitCommitted(ticket) implies
// every earlier record is durable, and the committed count never runs
// ahead of a contiguous durable prefix.
TEST(WalPipelineTest, AcksAreLogOrderedUnderCompletionReorder) {
  const uint64_t seed =
      test::AnnouncedSeed("WalPipelineTest.AcksLogOrdered", 0xB7101);
  Random rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    cloud::FaultInjector fi(SpikyFaults(rng));
    cloud::CloudStore store;
    store.SetFaultInjector(&fi);
    const cloud::StreamId stream = store.CreateStream("wal");
    WalWriter writer(&store, PipelinedOptions(stream, rng));

    const size_t n = 20 + rng.Uniform(40);
    std::vector<WalTicket> tickets(n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(
          writer.AppendAsync(Mutation(i + 1), nullptr, &tickets[i]).ok())
          << "seed=" << seed << " trial=" << trial;
    }
    // Wait on a random subset of tickets, deliberately out of enqueue
    // order. Each successful wait pins the in-order invariant at that
    // point: committed_records() covers the ticket's whole prefix.
    for (int probe = 0; probe < 8; ++probe) {
      const size_t idx = rng.Uniform(n);
      ASSERT_TRUE(writer.WaitCommitted(tickets[idx]).ok())
          << "seed=" << seed << " trial=" << trial;
      EXPECT_GE(writer.committed_records(), tickets[idx].index)
          << "seed=" << seed << " trial=" << trial;
    }
    ASSERT_TRUE(writer.Flush().ok()) << "seed=" << seed << " trial=" << trial;
    EXPECT_EQ(writer.committed_records(), n);

    // The stream replays to exactly the full run, in order, no duplicates
    // — retries may have landed duplicate batches physically, but the
    // (term, seq) dedupe hides them.
    const auto replay = StrictReplay(&store, stream);
    ASSERT_EQ(replay.size(), n) << "seed=" << seed << " trial=" << trial;
    ExpectContiguousPrefix(replay, seed, trial);
  }
}

// Crashing mid-pipeline (writer destroyed with appends still in flight)
// leaves a stream whose strict replay is a contiguous prefix covering at
// least everything that was acknowledged before the crash.
TEST(WalPipelineTest, CrashLeavesContiguousCommittedPrefix) {
  const uint64_t seed =
      test::AnnouncedSeed("WalPipelineTest.CrashPrefix", 0xB7102);
  Random rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    cloud::FaultInjector fi(SpikyFaults(rng));
    cloud::CloudStore store;
    store.SetFaultInjector(&fi);
    const cloud::StreamId stream = store.CreateStream("wal");

    const size_t n = 20 + rng.Uniform(40);
    uint64_t acked = 0;
    {
      WalWriter writer(&store, PipelinedOptions(stream, rng));
      std::vector<WalTicket> tickets(n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(
            writer.AppendAsync(Mutation(i + 1), nullptr, &tickets[i]).ok())
            << "seed=" << seed << " trial=" << trial;
      }
      // Wait for a random mid-stream ticket, then "crash" by destroying
      // the writer with the rest still in flight.
      const size_t idx = rng.Uniform(n);
      ASSERT_TRUE(writer.WaitCommitted(tickets[idx]).ok())
          << "seed=" << seed << " trial=" << trial;
      acked = writer.committed_records();
      ASSERT_GE(acked, tickets[idx].index);
    }

    const auto replay = StrictReplay(&store, stream);
    EXPECT_GE(replay.size(), acked) << "seed=" << seed << " trial=" << trial;
    EXPECT_LE(replay.size(), n) << "seed=" << seed << " trial=" << trial;
    ExpectContiguousPrefix(replay, seed, trial);
  }
}

// Cursor-exact SeekTo replays exactly the records enqueued after the
// cursor — even when both halves of the stream were physically reordered.
TEST(WalPipelineTest, SeekToCursorReplaysExactSuffix) {
  const uint64_t seed =
      test::AnnouncedSeed("WalPipelineTest.SeekToSuffix", 0xB7103);
  Random rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    cloud::FaultInjector fi(SpikyFaults(rng));
    cloud::CloudStore store;
    store.SetFaultInjector(&fi);
    const cloud::StreamId stream = store.CreateStream("wal");
    WalWriter writer(&store, PipelinedOptions(stream, rng));

    const size_t first = 10 + rng.Uniform(20);
    const size_t second = 10 + rng.Uniform(20);
    for (size_t i = 0; i < first; ++i) {
      ASSERT_TRUE(writer.AppendAsync(Mutation(i + 1), nullptr, nullptr).ok());
    }
    // The Flush barrier leaves committed_cursor() fresh: nothing pending,
    // nothing in flight, so the cursor names a durable gap-free position.
    ASSERT_TRUE(writer.Flush().ok()) << "seed=" << seed << " trial=" << trial;
    const WalCursor cut = writer.committed_cursor();
    ASSERT_EQ(cut.term, writer.term());

    for (size_t i = 0; i < second; ++i) {
      ASSERT_TRUE(
          writer.AppendAsync(Mutation(first + i + 1), nullptr, nullptr).ok());
    }
    ASSERT_TRUE(writer.Flush().ok()) << "seed=" << seed << " trial=" << trial;

    store.SetFaultInjector(nullptr);  // replay the suffix without faults.
    WalReader reader(&store, stream);
    reader.SeekTo(cut);
    std::vector<WalRecord> suffix;
    for (;;) {
      auto batch = reader.Poll();
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      if (batch.value().empty()) break;
      for (auto& r : batch.value()) suffix.push_back(std::move(r));
    }
    ASSERT_EQ(suffix.size(), second)
        << "seed=" << seed << " trial=" << trial;
    for (size_t i = 0; i < suffix.size(); ++i) {
      EXPECT_EQ(suffix[i].lsn, first + i + 1)
          << "seed=" << seed << " trial=" << trial;
    }
  }
}

}  // namespace
}  // namespace bg3::wal
