#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "cloud/cloud_store.h"
#include "refstore/ref_graph_store.h"

namespace bg3::refstore {
namespace {

struct RefFixture {
  RefFixture() {
    store = std::make_unique<cloud::CloudStore>();
    RefStoreOptions opts;
    opts.op_cost_iterations = 10;  // keep tests fast
    db = std::make_unique<RefGraphStore>(store.get(), opts);
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<RefGraphStore> db;
};

TEST(RefStoreTest, VertexRoundTrip) {
  RefFixture f;
  ASSERT_TRUE(f.db->AddVertex(1, "props").ok());
  EXPECT_EQ(f.db->GetVertex(1).value(), "props");
  EXPECT_TRUE(f.db->GetVertex(2).status().IsNotFound());
}

TEST(RefStoreTest, EdgeCrud) {
  RefFixture f;
  ASSERT_TRUE(f.db->AddEdge(1, 1, 2, "p", 10).ok());
  EXPECT_EQ(f.db->GetEdge(1, 1, 2).value(), "p");
  ASSERT_TRUE(f.db->DeleteEdge(1, 1, 2).ok());
  EXPECT_TRUE(f.db->GetEdge(1, 1, 2).status().IsNotFound());
}

TEST(RefStoreTest, NeighborsSorted) {
  RefFixture f;
  for (graph::VertexId d : {30, 10, 20}) {
    ASSERT_TRUE(f.db->AddEdge(1, 1, d, "", 1).ok());
  }
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(1, 1, 10, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].dst, 10u);
  EXPECT_EQ(out[2].dst, 30u);
}

TEST(RefStoreTest, EveryWriteRewritesWholePage) {
  // The conventional-design cost: adjacency writes are O(degree) to storage.
  RefFixture f;
  for (int d = 0; d < 50; ++d) {
    ASSERT_TRUE(f.db->AddEdge(1, 1, d, std::string(20, 'p'), 1).ok());
  }
  // 50 appends whose sizes grow with the adjacency list: total written far
  // exceeds the live page size.
  const uint64_t total = f.store->TotalBytes();
  const uint64_t live = f.store->LiveBytes();
  EXPECT_GT(total, 3 * live);
}

TEST(RefStoreTest, ConcurrentReadersWriters) {
  RefFixture f;
  std::thread writer([&] {
    for (int d = 0; d < 300; ++d) {
      ASSERT_TRUE(f.db->AddEdge(1, 1, d, "v", 1).ok());
    }
  });
  std::thread reader([&] {
    std::vector<graph::Neighbor> out;
    for (int i = 0; i < 100; ++i) {
      out.clear();
      ASSERT_TRUE(f.db->GetNeighbors(1, 1, 1000, &out).ok());
    }
  });
  writer.join();
  reader.join();
  std::vector<graph::Neighbor> out;
  ASSERT_TRUE(f.db->GetNeighbors(1, 1, 1000, &out).ok());
  EXPECT_EQ(out.size(), 300u);
}

}  // namespace
}  // namespace bg3::refstore
