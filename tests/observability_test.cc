// Tests for the observability stack: sharded Histogram percentiles and
// merge, the process-wide MetricsRegistry (ownership, collisions, snapshot
// determinism), the per-thread trace ring (wraparound, cross-thread export,
// slow-op log), JsonWriter, StatsReporter, and the disabled-path cost of
// BG3_TIMED_SCOPE (see DESIGN.md §5.3 for the budget).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/json_writer.h"
#include "common/metrics_registry.h"
#include "common/op_context.h"
#include "common/stats_reporter.h"
#include "common/timed_scope.h"
#include "common/trace.h"
#include "gtest/gtest.h"

namespace bg3 {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, ExactStatsOnKnownDistribution) {
  Histogram h;
  // 1..1000 once each: count/sum/min/max are exact regardless of bucketing.
  uint64_t sum = 0;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
    sum += v;
  }
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), sum / 1000.0);
}

TEST(HistogramTest, PercentilesWithinBucketResolution) {
  Histogram h;
  for (uint64_t v = 1; v <= 10'000; ++v) h.Record(v);
  // 4 sub-buckets per power of two + linear interpolation: relative error
  // is bounded by one sub-bucket width (25% of the value's power of two),
  // in practice much less. Assert a 15% envelope at three quantiles.
  for (double q : {0.50, 0.95, 0.99}) {
    const double expected = q * 10'000;
    const double got = static_cast<double>(h.Percentile(q));
    EXPECT_NEAR(got, expected, expected * 0.15) << "q=" << q;
  }
  // p100 is the exact max.
  EXPECT_EQ(h.Percentile(1.0), 10'000u);
}

TEST(HistogramTest, PercentileOfPointMassIsExactish) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(42);
  // All mass in one bucket: every quantile lands inside it.
  EXPECT_GE(h.Percentile(0.5), 40u);
  EXPECT_LE(h.Percentile(0.5), 48u);
  EXPECT_EQ(h.Min(), 42u);
  EXPECT_EQ(h.Max(), 42u);
}

TEST(HistogramTest, MergeFoldsCountsAndExtremes) {
  Histogram a, b;
  for (uint64_t v = 1; v <= 100; ++v) a.Record(v);
  for (uint64_t v = 1'000; v <= 1'100; ++v) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 201u);
  EXPECT_EQ(a.Min(), 1u);
  EXPECT_EQ(a.Max(), 1'100u);
  // Upper quantiles now come from b's range.
  EXPECT_GE(a.Percentile(0.99), 900u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(7);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(HistogramTest, SnapshotIsInternallyConsistent) {
  Histogram h;
  for (uint64_t v = 1; v <= 500; ++v) h.Record(v);
  const Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 500u);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_EQ(s.Percentile(1.0), 500u);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) h.Record(t * 1'000 + 1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  EXPECT_EQ(h.Min(), 1u);
  // Concurrent snapshot during writes is exercised by the stress test in
  // concurrency_stress_test.cc; here writers are joined, so exact.
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, OwnedMetricsAreGetOrCreate) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  Counter* c1 = reg.GetCounter("obs_test.owned.counter");
  Counter* c2 = reg.GetCounter("obs_test.owned.counter");
  EXPECT_EQ(c1, c2);
  c1->Add(3);
  const auto snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("obs_test.owned.counter"), 3u);
  reg.GetHistogram("obs_test.owned.hist")->Record(9);
  EXPECT_EQ(reg.TakeSnapshot().histograms.at("obs_test.owned.hist").count, 1u);
}

TEST(MetricsRegistryTest, CrossKindReuseAborts) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.GetCounter("obs_test.crosskind");
  EXPECT_DEATH(reg.GetHistogram("obs_test.crosskind"),
               "already registered with a different kind");
}

TEST(MetricsRegistryTest, DuplicateExternalRegistrationCountsCollision) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  const uint64_t before = reg.collisions();
  Counter a, b;
  EXPECT_TRUE(reg.RegisterCounter("obs_test.dup", &a));
  EXPECT_FALSE(reg.RegisterCounter("obs_test.dup", &b));  // first wins
  EXPECT_EQ(reg.collisions(), before + 1);
  a.Add(5);
  b.Add(7);
  const auto snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("obs_test.dup"), 5u);
  EXPECT_GE(snap.counters.at("bg3.registry.collisions"), before + 1);
  reg.Deregister("obs_test.dup");
}

TEST(MetricsRegistryTest, SnapshotIsDeterministicAtQuiescence) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.GetCounter("obs_test.det.a")->Add(1);
  reg.GetGauge("obs_test.det.b")->Add(2);
  reg.GetHistogram("obs_test.det.c")->Record(3);
  const std::string json1 = reg.RenderJson();
  const std::string json2 = reg.RenderJson();
  EXPECT_EQ(json1, json2);
  const std::string prom = reg.RenderPrometheus();
  EXPECT_NE(prom.find("obs_test_det_a 1"), std::string::npos) << prom;
}

TEST(MetricsRegistryTest, DeregisterPrefixRemovesExternalsOnly) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  Counter ext;
  reg.RegisterCounter("obs_test.prefix.ext", &ext);
  reg.RegisterCallback("obs_test.prefix.cb", [] { return uint64_t{4}; });
  reg.GetCounter("obs_test.prefix.owned");
  reg.DeregisterPrefix("obs_test.prefix.");
  const auto snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.count("obs_test.prefix.ext"), 0u);
  EXPECT_EQ(snap.counters.count("obs_test.prefix.cb"), 0u);
  // Owned metrics survive: scope-static histogram pointers must stay valid.
  EXPECT_EQ(snap.counters.count("obs_test.prefix.owned"), 1u);
}

TEST(MetricsRegistryTest, CallbackMayReenterRegistry) {
  // Snapshot evaluates callbacks after releasing the registry mutex, so a
  // callback that itself creates metrics (as engine code under
  // BG3_TIMED_SCOPE does) must not deadlock.
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.RegisterCallback("obs_test.reenter", [&reg] {
    return reg.GetCounter("obs_test.reenter.inner")->Get();
  });
  const auto snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("obs_test.reenter"), 0u);
  reg.Deregister("obs_test.reenter");
}

TEST(MetricsRegistryTest, InstanceIdsAreSequencedPerKind) {
  const uint64_t a = MetricsRegistry::NextInstanceId("obs_test_kind");
  const uint64_t b = MetricsRegistry::NextInstanceId("obs_test_kind");
  const uint64_t other = MetricsRegistry::NextInstanceId("obs_test_kind2");
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(other, 0u);
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, CompactObjectWithEscapes) {
  JsonWriter w;
  w.BeginObject();
  w.KV("s", std::string("a\"b\\c\nd"));
  w.KV("i", uint64_t{7});
  w.KV("d", 1.5);
  w.KV("b", true);
  w.Key("null");
  w.Null();
  w.Key("arr");
  w.BeginArray();
  w.Value(1);
  w.Value("two");
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":7,\"d\":1.5,\"b\":true,"
            "\"null\":null,\"arr\":[1,\"two\"]}");
}

TEST(JsonWriterTest, IndentedNesting) {
  JsonWriter w(2);
  w.BeginObject();
  w.Key("o");
  w.BeginObject();
  w.KV("x", 1);
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\n  \"o\": {\n    \"x\": 1\n  }\n}");
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::Trace::SetEnabled(true);
    trace::Trace::Reset();
  }
  void TearDown() override {
    trace::Trace::SetSlowOpThresholdNs(0);
    trace::Trace::SetEnabled(false);
    trace::Trace::Reset();
    trace::Trace::SetRingCapacityForTesting(16'384);
  }
};

TEST_F(TraceTest, SpansAppearInChromeExport) {
  {
    trace::TraceSpan outer("bg3.test.outer");
    trace::TraceSpan inner("bg3.test.inner");
    trace::Trace::Instant("bg3.test.mark");
  }
  const std::string json = trace::Trace::ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("bg3.test.outer"), std::string::npos);
  EXPECT_NE(json.find("bg3.test.inner"), std::string::npos);
  EXPECT_NE(json.find("bg3.test.mark"), std::string::npos);
  // cat is the second dot-component of the name.
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos) << json;
}

TEST_F(TraceTest, RingWrapKeepsNewestEvents) {
  trace::Trace::SetRingCapacityForTesting(16);  // 16 is the enforced minimum
  // Fresh thread => fresh (tiny) ring; record far more events than fit.
  std::thread t([] {
    for (int i = 0; i < 100; ++i) {
      trace::TraceSpan span(i < 50 ? "bg3.test.old" : "bg3.test.recent");
    }
  });
  t.join();
  const std::string json = trace::Trace::ExportChromeJson();
  EXPECT_EQ(json.find("bg3.test.old"), std::string::npos);
  EXPECT_NE(json.find("bg3.test.recent"), std::string::npos);
  // The worker's wrapped ring holds exactly its capacity; the (quiet) main
  // thread ring may hold a stray event or two from the harness.
  EXPECT_LE(trace::Trace::EventCountForTesting(), 16u + 2u);
}

TEST_F(TraceTest, ExportMergesAllThreads) {
  trace::Trace::Instant("bg3.test.main_thread");
  std::thread t([] { trace::Trace::Instant("bg3.test.worker_thread"); });
  t.join();
  const std::string json = trace::Trace::ExportChromeJson();
  EXPECT_NE(json.find("bg3.test.main_thread"), std::string::npos);
  EXPECT_NE(json.find("bg3.test.worker_thread"), std::string::npos);
}

TEST_F(TraceTest, SlowOpThresholdCountsOnlySlowRoots) {
  trace::Trace::SetSlowOpThresholdNs(1);  // everything is slow
  const uint64_t before = trace::Trace::SlowOpCount();
  {
    trace::TraceSpan root("bg3.test.slow_root");
    trace::TraceSpan child("bg3.test.fast_child");  // depth>0: not counted
  }
  EXPECT_EQ(trace::Trace::SlowOpCount(), before + 1);

  trace::Trace::SetSlowOpThresholdNs(60ull * 1'000'000'000);  // 1 min
  {
    trace::TraceSpan root("bg3.test.fast_root");
  }
  EXPECT_EQ(trace::Trace::SlowOpCount(), before + 1);
}

TEST_F(TraceTest, ResetDropsEvents) {
  trace::Trace::Instant("bg3.test.pre_reset");
  trace::Trace::Reset();
  const std::string json = trace::Trace::ExportChromeJson();
  EXPECT_EQ(json.find("bg3.test.pre_reset"), std::string::npos);
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  trace::Trace::SetEnabled(false);
  trace::Trace::Instant("bg3.test.while_disabled");
  {
    trace::TraceSpan span("bg3.test.span_disabled");
  }
  trace::Trace::SetEnabled(true);
  const std::string json = trace::Trace::ExportChromeJson();
  EXPECT_EQ(json.find("bg3.test.while_disabled"), std::string::npos);
  EXPECT_EQ(json.find("bg3.test.span_disabled"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-request plane: OpScope / TraceBinding / tail-based retention
// ---------------------------------------------------------------------------

class RequestTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::Trace::Reset();
    trace::Trace::SetSlowOpThresholdNs(0);
  }
  void TearDown() override {
    trace::Trace::SetSlowOpThresholdNs(0);
    trace::Trace::Reset();
  }
};

TEST_F(RequestTraceTest, SpanCausalityAcrossThreads) {
  OpContext ctx = OpContext::Traced("xthread", nullptr);
  uint64_t root_span = 0;
  {
    trace::OpScope root("bg3.test.xthread_root", &ctx);
    // What a thread-pool handoff captures...
    const uint64_t trace_id = trace::CurrentTraceId();
    const uint64_t parent_span = trace::CurrentSpanId();
    ASSERT_EQ(trace_id, ctx.trace_id);
    ASSERT_NE(parent_span, 0u);
    root_span = parent_span;
    // ...and installs on the worker; the worker's spans join the trace as
    // children of the handoff point.
    std::thread worker([trace_id, parent_span] {
      trace::TraceBinding binding(trace_id, parent_span, "xthread");
      BG3_TRACE_SPAN("bg3.test.xthread_worker");
    });
    worker.join();
  }
  const auto retained = trace::Trace::RetainedTraces();
  const trace::SlowTrace* mine = nullptr;
  for (const auto& t : retained) {
    if (t.trace_id == ctx.trace_id) mine = &t;
  }
  ASSERT_NE(mine, nullptr);
  bool worker_seen = false;
  uint32_t root_tid = 0, worker_tid = 0;
  for (const auto& s : mine->spans) {
    if (std::string(s.name) == "bg3.test.xthread_worker") {
      worker_seen = true;
      worker_tid = s.tid;
      EXPECT_EQ(s.parent_id, root_span)
          << "worker span must attach under the handoff span";
    }
    if (std::string(s.name) == "bg3.test.xthread_root") root_tid = s.tid;
  }
  EXPECT_TRUE(worker_seen);
  EXPECT_NE(root_tid, worker_tid) << "spans recorded on distinct threads";
}

TEST_F(RequestTraceTest, TailSamplingKeepsSlowDropsFast) {
  trace::Trace::SetSlowOpThresholdNs(5'000'000);  // 5 ms

  OpContext fast = OpContext::Traced("fast", nullptr);
  {
    trace::OpScope scope("bg3.test.fast_op", &fast);
  }
  OpContext slow = OpContext::Traced("slow", nullptr);
  {
    trace::OpScope scope("bg3.test.slow_op", &slow);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const auto retained = trace::Trace::RetainedTraces();
  bool fast_kept = false, slow_kept = false;
  for (const auto& t : retained) {
    if (t.trace_id == fast.trace_id) fast_kept = true;
    if (t.trace_id == slow.trace_id) slow_kept = true;
  }
  EXPECT_FALSE(fast_kept) << "sub-threshold trace must be dropped";
  EXPECT_TRUE(slow_kept) << "over-threshold trace must be retained";
}

TEST_F(RequestTraceTest, ThresholdZeroRetainsEveryTracedRequest) {
  OpContext ctx = OpContext::Traced("always", nullptr);
  {
    trace::OpScope scope("bg3.test.instant_op", &ctx);
  }
  bool kept = false;
  for (const auto& t : trace::Trace::RetainedTraces()) {
    if (t.trace_id == ctx.trace_id) kept = true;
  }
  EXPECT_TRUE(kept);
}

TEST_F(RequestTraceTest, NestedOpScopesShareOneRoot) {
  OpContext ctx = OpContext::Traced("nested", nullptr);
  {
    trace::OpScope outer("bg3.test.outer_op", &ctx);
    trace::OpScope inner("bg3.test.inner_op", &ctx);  // same trace: child
  }
  const auto retained = trace::Trace::RetainedTraces();
  const trace::SlowTrace* mine = nullptr;
  for (const auto& t : retained) {
    if (t.trace_id == ctx.trace_id) mine = &t;
  }
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->root_name, "bg3.test.outer_op");
  size_t roots = 0;
  for (const auto& s : mine->spans) {
    if (s.parent_id == 0) ++roots;
  }
  EXPECT_EQ(roots, 1u);
}

TEST_F(RequestTraceTest, UntracedContextRecordsNothing) {
  OpContext plain;  // trace_id 0
  const size_t before = trace::Trace::RetainedTraces().size();
  {
    trace::OpScope scope("bg3.test.untraced_op", &plain);
    trace::OpScope null_scope("bg3.test.null_op", nullptr);
  }
  EXPECT_EQ(trace::Trace::RetainedTraces().size(), before);
}

// Acceptance bar: with no traced request in flight, BG3_OP_SCOPE on an
// untraced context must cost single-digit nanoseconds (one null/zero check).
// Same budget regime as DisabledOverheadUnderBudget below.
TEST_F(RequestTraceTest, UntracedOpScopeOverheadUnderBudget) {
  trace::Trace::SetEnabled(false);
  trace::Trace::SetSlowOpThresholdNs(0);
  OpContext plain;

  constexpr int kIters = 200'000;
  constexpr int kReps = 20;
  double ns_per_op = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const uint64_t start = NowNanos();
    for (int i = 0; i < kIters; ++i) {
      BG3_OP_SCOPE("bg3.test.overhead_op", &plain);
    }
    const uint64_t elapsed = NowNanos() - start;
    ns_per_op = std::min(ns_per_op, static_cast<double>(elapsed) / kIters);
  }
  printf("untraced BG3_OP_SCOPE: %.2f ns/op\n", ns_per_op);
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define BG3_OBS_TEST_SANITIZED_OPSCOPE 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define BG3_OBS_TEST_SANITIZED_OPSCOPE 1
#endif
#if !defined(BG3_OBS_TEST_SANITIZED_OPSCOPE) && defined(NDEBUG)
  const char* budget_env = getenv("BG3_OVERHEAD_BUDGET_NS");
  const double budget =
      budget_env != nullptr ? strtod(budget_env, nullptr) : 10.0;
  EXPECT_LT(ns_per_op, budget)
      << "untraced OpScope fast path regressed past " << budget << " ns/op";
#else
  EXPECT_LT(ns_per_op, 1'000.0);
#endif
}

// ---------------------------------------------------------------------------
// TimedScope
// ---------------------------------------------------------------------------

TEST(TimedScopeTest, RecordsIntoRegistryHistogram) {
  obs::SetTimingEnabled(true);
  for (int i = 0; i < 10; ++i) {
    BG3_TIMED_SCOPE("obs_test.timed.scope_ns");
  }
  const auto snap = MetricsRegistry::Default().TakeSnapshot();
  EXPECT_EQ(snap.histograms.at("obs_test.timed.scope_ns").count, 10u);
}

TEST(TimedScopeTest, DisabledTimingRecordsNothing) {
  obs::SetTimingEnabled(false);
  for (int i = 0; i < 10; ++i) {
    BG3_TIMED_SCOPE("obs_test.timed.disabled_ns");
  }
  obs::SetTimingEnabled(true);
  const auto snap = MetricsRegistry::Default().TakeSnapshot();
  EXPECT_EQ(snap.histograms.at("obs_test.timed.disabled_ns").count, 0u);
}

// Satellite (f): the disabled fast path must stay in single-digit
// nanoseconds — one relaxed atomic load and a branch. The assertion budget
// is enforced only in plain optimized builds: sanitizers multiply the cost
// of atomics by an order of magnitude, and debug builds don't inline the
// scope, so there the test only sanity-checks an upper bound.
TEST(TimedScopeTest, DisabledOverheadUnderBudget) {
  obs::SetTimingEnabled(false);
  trace::Trace::SetEnabled(false);
  trace::Trace::SetSlowOpThresholdNs(0);

  // Short chunks, many reps: a ~0.6 ms chunk fits inside one scheduler
  // quantum even on a single-core host running parallel test binaries, so
  // the min over reps measures the fast path itself, not preemption.
  constexpr int kIters = 200'000;
  constexpr int kReps = 20;
  // Warm the static histogram-pointer initialization out of the timing.
  {
    BG3_TIMED_SCOPE("obs_test.timed.overhead_ns");
  }
  double ns_per_op = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const uint64_t start = NowNanos();
    for (int i = 0; i < kIters; ++i) {
      BG3_TIMED_SCOPE("obs_test.timed.overhead_ns");
    }
    const uint64_t elapsed = NowNanos() - start;
    ns_per_op = std::min(ns_per_op, static_cast<double>(elapsed) / kIters);
  }
  obs::SetTimingEnabled(true);

  printf("disabled BG3_TIMED_SCOPE: %.2f ns/op\n", ns_per_op);
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define BG3_OBS_TEST_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define BG3_OBS_TEST_SANITIZED 1
#endif
#if !defined(BG3_OBS_TEST_SANITIZED) && defined(NDEBUG)
  const char* budget_env = getenv("BG3_OVERHEAD_BUDGET_NS");
  const double budget =
      budget_env != nullptr ? strtod(budget_env, nullptr) : 10.0;
  EXPECT_LT(ns_per_op, budget)
      << "disabled timed-scope fast path regressed past " << budget
      << " ns/op";
#else
  EXPECT_LT(ns_per_op, 1'000.0);  // debug/sanitizer: sanity bound only
#endif
}

// ---------------------------------------------------------------------------
// StatsReporter
// ---------------------------------------------------------------------------

TEST(StatsReporterTest, ReportOnceRendersThroughSink) {
  MetricsRegistry::Default().GetCounter("obs_test.reporter.c")->Add(11);
  StatsReporterOptions opts;
  opts.format = "json";
  StatsReporter reporter(opts);
  std::string captured;
  reporter.SetSink([&captured](const std::string& s) { captured = s; });
  reporter.ReportOnce();
  EXPECT_NE(captured.find("obs_test.reporter.c"), std::string::npos);
  EXPECT_EQ(reporter.reports(), 1u);
}

TEST(StatsReporterTest, BackgroundThreadReportsAndStops) {
  StatsReporterOptions opts;
  opts.interval_ms = 1;
  StatsReporter reporter(opts);
  std::atomic<uint64_t> count{0};
  reporter.SetSink([&count](const std::string&) { ++count; });
  reporter.Start();
  reporter.Start();  // idempotent
  while (count.load() < 3) std::this_thread::yield();
  reporter.Stop();
  reporter.Stop();  // idempotent
  const uint64_t at_stop = count.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(count.load(), at_stop);  // thread really stopped
}

}  // namespace
}  // namespace bg3
