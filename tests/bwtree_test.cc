#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bwtree/bwtree.h"
#include "bwtree/iterator.h"
#include "bwtree/page.h"
#include "cloud/cloud_store.h"

namespace bg3::bwtree {
namespace {

struct TreeFixture {
  explicit TreeFixture(BwTreeOptions opts = {}, size_t extent_capacity = 1 << 16) {
    cloud::CloudStoreOptions copts;
    copts.extent_capacity = extent_capacity;
    store = std::make_unique<cloud::CloudStore>(copts);
    opts.base_stream = store->CreateStream("base");
    opts.delta_stream = store->CreateStream("delta");
    tree = std::make_unique<BwTree>(store.get(), opts);
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<BwTree> tree;
};

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

// --- page codecs ---------------------------------------------------------------

TEST(PageCodecTest, BasePageRoundTrip) {
  std::vector<Entry> entries = {{"a", "1"}, {"b", ""}, {"c", "333"}};
  const std::string rec = EncodeBasePage(7, 42, 99, entries);
  Slice in(rec);
  RecordHeader header;
  ASSERT_TRUE(DecodeRecordHeader(&in, &header).ok());
  EXPECT_EQ(header.kind, RecordKind::kBasePage);
  EXPECT_EQ(header.tree_id, 7u);
  EXPECT_EQ(header.page_id, 42u);
  EXPECT_EQ(header.lsn, 99u);
  std::vector<Entry> decoded;
  ASSERT_TRUE(DecodeBasePagePayload(in, &decoded).ok());
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[1].key, "b");
  EXPECT_EQ(decoded[2].value, "333");
}

TEST(PageCodecTest, DeltaRoundTrip) {
  std::vector<DeltaEntry> entries = {{DeltaOp::kUpsert, "x", "1"},
                                     {DeltaOp::kDelete, "y", ""}};
  const std::string rec = EncodeDelta(1, 2, 3, entries);
  Slice in(rec);
  RecordHeader header;
  ASSERT_TRUE(DecodeRecordHeader(&in, &header).ok());
  EXPECT_EQ(header.kind, RecordKind::kDelta);
  std::vector<DeltaEntry> decoded;
  ASSERT_TRUE(DecodeDeltaPayload(in, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].op, DeltaOp::kUpsert);
  EXPECT_EQ(decoded[1].op, DeltaOp::kDelete);
}

TEST(PageCodecTest, CorruptHeaderRejected) {
  RecordHeader header;
  Slice empty("");
  EXPECT_TRUE(DecodeRecordHeader(&empty, &header).IsCorruption());
  std::string bad = EncodeDelta(1, 2, 3, {});
  bad[0] = 'Z';
  Slice in(bad);
  EXPECT_TRUE(DecodeRecordHeader(&in, &header).IsCorruption());
}

TEST(PageCodecTest, ApplyDeltaChainMergesInOrder) {
  std::vector<Entry> base = {{"a", "1"}, {"c", "3"}};
  std::vector<DeltaEntry> older = {{DeltaOp::kUpsert, "b", "2"},
                                   {DeltaOp::kUpsert, "a", "old"}};
  std::vector<DeltaEntry> newer = {{DeltaOp::kUpsert, "a", "new"},
                                   {DeltaOp::kDelete, "c", ""}};
  auto merged = ApplyDeltaChain(base, {&older, &newer});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].key, "a");
  EXPECT_EQ(merged[0].value, "new");
  EXPECT_EQ(merged[1].key, "b");
}

TEST(PageCodecTest, ApplyDeltaChainDeleteOfMissingKeyIsNoop) {
  std::vector<Entry> base = {{"a", "1"}};
  std::vector<DeltaEntry> d = {{DeltaOp::kDelete, "zz", ""}};
  auto merged = ApplyDeltaChain(base, {&d});
  ASSERT_EQ(merged.size(), 1u);
}

TEST(PageCodecTest, MergeDeltasNewerWins) {
  std::vector<DeltaEntry> older = {{DeltaOp::kUpsert, "k", "v1"},
                                   {DeltaOp::kUpsert, "m", "x"}};
  std::vector<DeltaEntry> newer = {{DeltaOp::kDelete, "k", ""}};
  auto merged = MergeDeltas(older, newer);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].key, "k");
  EXPECT_EQ(merged[0].op, DeltaOp::kDelete);
  EXPECT_EQ(merged[1].key, "m");
}

TEST(PageCodecTest, LookupHelpers) {
  std::vector<Entry> base = {{"a", "1"}, {"c", "3"}};
  std::string value;
  EXPECT_TRUE(LookupInBase(base, "c", &value));
  EXPECT_EQ(value, "3");
  EXPECT_FALSE(LookupInBase(base, "b", &value));

  std::vector<DeltaEntry> delta = {{DeltaOp::kUpsert, "x", "1"},
                                   {DeltaOp::kDelete, "x", ""}};
  bool deleted = false;
  EXPECT_TRUE(LookupInDelta(delta, "x", &value, &deleted));
  EXPECT_TRUE(deleted);  // newest entry (the delete) wins
}

// --- basic CRUD -----------------------------------------------------------------

TEST(BwTreeTest, GetOnEmptyTreeIsNotFound) {
  TreeFixture f;
  EXPECT_TRUE(f.tree->Get("nope").status().IsNotFound());
}

TEST(BwTreeTest, UpsertThenGet) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Upsert("k1", "v1").ok());
  EXPECT_EQ(f.tree->Get("k1").value(), "v1");
}

TEST(BwTreeTest, UpsertOverwrites) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Upsert("k", "v1").ok());
  ASSERT_TRUE(f.tree->Upsert("k", "v2").ok());
  EXPECT_EQ(f.tree->Get("k").value(), "v2");
}

TEST(BwTreeTest, DeleteHidesKey) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Upsert("k", "v").ok());
  ASSERT_TRUE(f.tree->Delete("k").ok());
  EXPECT_TRUE(f.tree->Get("k").status().IsNotFound());
}

TEST(BwTreeTest, DeleteOfAbsentKeyThenGet) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Delete("ghost").ok());
  EXPECT_TRUE(f.tree->Get("ghost").status().IsNotFound());
}

TEST(BwTreeTest, EmptyValueIsStorable) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Upsert("k", "").ok());
  auto v = f.tree->Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().empty());
}

TEST(BwTreeTest, ManyKeysSurviveConsolidationCycles) {
  BwTreeOptions opts;
  opts.consolidate_threshold = 4;
  TreeFixture f(opts);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(f.tree->Get(Key(i)).value(), "v" + std::to_string(i)) << i;
  }
  EXPECT_GT(f.tree->stats().consolidations.Get(), 0u);
}

// --- delta modes ------------------------------------------------------------------

TEST(BwTreeTest, ReadOptimizedKeepsAtMostOneDelta) {
  BwTreeOptions opts;
  opts.delta_mode = DeltaMode::kReadOptimized;
  opts.consolidate_threshold = 100;  // avoid consolidation in this test
  opts.allow_split = false;
  TreeFixture f(opts);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
  }
  // Every write must remain visible despite repeated delta merging.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(f.tree->Get(Key(i)).ok()) << i;
  }
}

TEST(BwTreeTest, TraditionalModeCorrectness) {
  BwTreeOptions opts;
  opts.delta_mode = DeltaMode::kTraditional;
  opts.consolidate_threshold = 10;
  TreeFixture f(opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i % 10), "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(f.tree->Get(Key(i)).value(), "v" + std::to_string(90 + i));
  }
}

TEST(BwTreeTest, ZeroCacheReadAmplificationLowerForReadOptimized) {
  // The Fig. 9 mechanism: after the same write pattern, zero-cache reads on
  // the traditional tree touch storage more often per read.
  auto run = [](DeltaMode mode) {
    BwTreeOptions opts;
    opts.delta_mode = mode;
    opts.consolidate_threshold = 10;
    opts.allow_split = false;
    opts.read_cache = ReadCacheMode::kNone;
    TreeFixture f(opts);
    // 12 updates across 4 keys on one page: the traditional tree
    // consolidates at the 10th delta and retains a 2-deep chain; the
    // read-optimized tree keeps at most one (merged) delta throughout.
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(f.tree->Upsert(Key(i), "v" + std::to_string(round)).ok());
      }
    }
    const uint64_t reads_before = f.store->stats().read_ops.Get();
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(f.tree->Get(Key(i)).value(), "v2");
    }
    return f.store->stats().read_ops.Get() - reads_before;
  };
  const uint64_t traditional = run(DeltaMode::kTraditional);
  const uint64_t read_optimized = run(DeltaMode::kReadOptimized);
  EXPECT_GT(traditional, read_optimized);
  // Read-optimized: <= base + 1 delta per read.
  EXPECT_LE(read_optimized, 4u * 2u);
}

TEST(BwTreeTest, ReadOptimizedWritesMoreDeltaBytes) {
  // The Fig. 10 mechanism: merged deltas re-write prior entries.
  auto run = [](DeltaMode mode) {
    BwTreeOptions opts;
    opts.delta_mode = mode;
    opts.consolidate_threshold = 10;
    opts.allow_split = false;
    TreeFixture f(opts);
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(f.tree->Upsert(Key(i), std::string(50, 'v')).ok());
    }
    return f.store->TotalBytes(1);  // delta stream id is 1 in the fixture
  };
  EXPECT_GT(run(DeltaMode::kReadOptimized), run(DeltaMode::kTraditional));
}

// --- splits ---------------------------------------------------------------------

TEST(BwTreeTest, SplitsKeepAllKeys) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 16;
  TreeFixture f(opts);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), std::to_string(i)).ok());
  }
  EXPECT_GT(f.tree->stats().splits.Get(), 0u);
  EXPECT_GT(f.tree->LeafCount(), 1u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(f.tree->Get(Key(i)).value(), std::to_string(i)) << i;
  }
  EXPECT_EQ(f.tree->CountEntries(), 300u);
}

TEST(BwTreeTest, SplitWithReverseInsertionOrder) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 8;
  TreeFixture f(opts);
  for (int i = 299; i >= 0; --i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), std::to_string(i)).ok());
  }
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(f.tree->Get(Key(i)).value(), std::to_string(i));
  }
}

TEST(BwTreeTest, NoSplitWhenDisabled) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 8;
  opts.allow_split = false;
  TreeFixture f(opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
  }
  EXPECT_EQ(f.tree->LeafCount(), 1u);
  EXPECT_EQ(f.tree->stats().splits.Get(), 0u);
}

// --- scans ----------------------------------------------------------------------

TEST(BwTreeTest, ScanReturnsSortedRange) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 16;
  TreeFixture f(opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), std::to_string(i)).ok());
  }
  std::vector<Entry> out;
  BwTree::ScanOptions scan;
  scan.start_key = Key(10);
  scan.end_key = Key(20);
  ASSERT_TRUE(f.tree->Scan(scan, &out).ok());
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.front().key, Key(10));
  EXPECT_EQ(out.back().key, Key(19));
  for (size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1].key, out[i].key);
}

TEST(BwTreeTest, ScanHonorsLimit) {
  TreeFixture f;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
  std::vector<Entry> out;
  BwTree::ScanOptions scan;
  scan.limit = 7;
  ASSERT_TRUE(f.tree->Scan(scan, &out).ok());
  EXPECT_EQ(out.size(), 7u);
}

TEST(BwTreeTest, ScanSkipsDeleted) {
  TreeFixture f;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
  ASSERT_TRUE(f.tree->Delete(Key(5)).ok());
  std::vector<Entry> out;
  ASSERT_TRUE(f.tree->Scan({}, &out).ok());
  EXPECT_EQ(out.size(), 9u);
  for (const Entry& e : out) EXPECT_NE(e.key, Key(5));
}

TEST(BwTreeTest, ScanAcrossManyLeaves) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 8;
  TreeFixture f(opts);
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
  std::vector<Entry> out;
  ASSERT_TRUE(f.tree->Scan({}, &out).ok());
  ASSERT_EQ(out.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(out[i].key, Key(i));
}

TEST(BwTreeIteratorTest, IteratesInChunks) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 8;
  TreeFixture f(opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), std::to_string(i)).ok());
  }
  BwTreeIterator it(f.tree.get(), Key(5), Key(95), /*chunk_size=*/9);
  int expected = 5;
  while (it.Valid()) {
    EXPECT_EQ(it.key(), Key(expected));
    it.Next();
    ++expected;
  }
  EXPECT_TRUE(it.status().ok());
  EXPECT_EQ(expected, 95);
}

TEST(BwTreeIteratorTest, EmptyRange) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Upsert("m", "v").ok());
  BwTreeIterator it(f.tree.get(), "x", "z");
  EXPECT_FALSE(it.Valid());
}

// --- flush modes ------------------------------------------------------------------

TEST(BwTreeTest, DeferredModeTracksDirtyPages) {
  BwTreeOptions opts;
  opts.flush_mode = FlushMode::kDeferred;
  TreeFixture f(opts);
  ASSERT_TRUE(f.tree->Upsert("k", "v").ok());
  EXPECT_EQ(f.tree->DirtyPageIds().size(), 1u);
  EXPECT_EQ(f.store->stats().append_ops.Get(), 0u);  // nothing flushed yet
  EXPECT_EQ(f.tree->FlushDirtyPages(100), 1u);
  EXPECT_TRUE(f.tree->DirtyPageIds().empty());
  EXPECT_GT(f.store->stats().append_ops.Get(), 0u);
}

TEST(BwTreeTest, FlushPageIsNoopWhenClean) {
  BwTreeOptions opts;
  opts.flush_mode = FlushMode::kDeferred;
  TreeFixture f(opts);
  ASSERT_TRUE(f.tree->Upsert("k", "v").ok());
  ASSERT_EQ(f.tree->FlushDirtyPages(100), 1u);
  const uint64_t appends = f.store->stats().append_ops.Get();
  EXPECT_EQ(f.tree->FlushDirtyPages(100), 0u);
  EXPECT_EQ(f.store->stats().append_ops.Get(), appends);
}

TEST(BwTreeTest, SyncModeFlushesEveryWrite) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Upsert("k", "v").ok());
  EXPECT_GE(f.store->stats().append_ops.Get(), 1u);
}

// --- GC relocation ------------------------------------------------------------------

TEST(BwTreeTest, RelocateMovesCurrentBasePage) {
  BwTreeOptions opts;
  opts.consolidate_threshold = 2;  // force base page flushes
  TreeFixture f(opts);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
  // Find a valid base record on the base stream.
  auto records = f.store->TailRecords(0, cloud::PagePointer{}, 1000).value();
  ASSERT_FALSE(records.empty());
  bool moved_any = false;
  for (const auto& [ptr, bytes] : records) {
    auto moved = f.tree->Relocate(ptr, bytes);
    ASSERT_TRUE(moved.ok());
    if (moved.value() > 0) moved_any = true;
  }
  EXPECT_TRUE(moved_any);
  // Data must remain fully readable after relocation.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(f.tree->Get(Key(i)).ok());
}

TEST(BwTreeTest, RelocateStaleRecordMovesNothing) {
  BwTreeOptions opts;
  opts.consolidate_threshold = 2;
  TreeFixture f(opts);
  ASSERT_TRUE(f.tree->Upsert("a", "1").ok());
  auto records = f.store->TailRecords(1, cloud::PagePointer{}, 10).value();
  ASSERT_FALSE(records.empty());
  const auto [first_ptr, first_bytes] = records.front();
  // Make the record stale by consolidating past it.
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(f.tree->Upsert("a", "x").ok());
  auto moved = f.tree->Relocate(first_ptr, first_bytes);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 0u);
}

TEST(BwTreeTest, RelocateRejectsForeignTree) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Upsert("a", "1").ok());
  const std::string foreign = EncodeBasePage(999, 0, 1, {});
  EXPECT_FALSE(f.tree->Relocate(cloud::PagePointer{0, 0, 0, 4}, foreign).ok());
}

// --- stats / memory ------------------------------------------------------------------

TEST(BwTreeTest, CountersTrackOps) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Upsert("a", "1").ok());
  ASSERT_TRUE(f.tree->Delete("a").ok());
  (void)f.tree->Get("a");
  EXPECT_EQ(f.tree->stats().upserts.Get(), 1u);
  EXPECT_EQ(f.tree->stats().deletes.Get(), 1u);
  EXPECT_EQ(f.tree->stats().gets.Get(), 1u);
}

TEST(BwTreeTest, MemoryGrowsWithData) {
  TreeFixture f;
  const size_t empty = f.tree->ApproxMemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), std::string(100, 'v')).ok());
  }
  EXPECT_GT(f.tree->ApproxMemoryBytes(), empty + 100'000);
}

// --- concurrency ------------------------------------------------------------------

TEST(BwTreeTest, ConcurrentDisjointWriters) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 32;
  TreeFixture f(opts);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(
            f.tree->Upsert(Key(t * 1000 + i), std::to_string(t)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(f.tree->CountEntries(), 2000u);
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_EQ(f.tree->Get(Key(t * 1000 + i)).value(), std::to_string(t));
    }
  }
}

TEST(BwTreeTest, ConcurrentReadersAndWriters) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 64;
  TreeFixture f(opts);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "0").ok());
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int round = 1; round < 50; ++round) {
      for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(f.tree->Upsert(Key(i), std::to_string(round)).ok());
      }
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      for (int i = 0; i < 100; ++i) {
        auto v = f.tree->Get(Key(i));
        ASSERT_TRUE(v.ok());  // a key never disappears
      }
    }
  });
  writer.join();
  reader.join();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f.tree->Get(Key(i)).value(), "49");
}

TEST(BwTreeTest, HotKeyContentionCountsLatchConflicts) {
  TreeFixture f;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(f.tree->Upsert("hot", "v").ok());
      }
    });
  }
  go.store(true);  // start all writers together so latches actually contend
  for (auto& th : threads) th.join();
  EXPECT_GT(f.tree->stats().latch_exclusive_conflicts.Get(), 0u);
  EXPECT_GT(f.tree->stats().latch_exclusive_acquires.Get(), 0u);
}

}  // namespace
}  // namespace bg3::bwtree

namespace bg3::bwtree {
namespace {

// Regression: the scan fast path overlays the delta chain onto the base
// without materializing the page; deletes and updates at range boundaries
// must be honored.
TEST(BwTreeTest, ScanOverlayHonorsChainAtBoundaries) {
  BwTreeOptions opts;
  opts.consolidate_threshold = 100;  // keep everything in the chain
  TreeFixture f(opts);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), "base" + std::to_string(i)).ok());
  }
  // Force a consolidation so Key(0..19) are base entries, then chain ops.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(100 + i), "x").ok());
  }
  ASSERT_TRUE(f.tree->Delete(Key(5)).ok());            // delete inside range
  ASSERT_TRUE(f.tree->Upsert(Key(7), "updated").ok()); // update inside range
  ASSERT_TRUE(f.tree->Upsert(Key(3) + "a", "inserted").ok());  // new between

  std::vector<Entry> out;
  BwTree::ScanOptions scan;
  scan.start_key = Key(3);
  scan.end_key = Key(9);
  ASSERT_TRUE(f.tree->Scan(scan, &out).ok());
  // Expect: 3, 3a(new), 4, 6(5 deleted), 7(updated), 8.
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0].key, Key(3));
  EXPECT_EQ(out[1].key, Key(3) + "a");
  EXPECT_EQ(out[1].value, "inserted");
  EXPECT_EQ(out[2].key, Key(4));
  EXPECT_EQ(out[3].key, Key(6));
  EXPECT_EQ(out[4].key, Key(7));
  EXPECT_EQ(out[4].value, "updated");
  EXPECT_EQ(out[5].key, Key(8));
}

// Algorithm 1's consolidation trigger counts merged *updates*, not unique
// keys: repeated updates of one key must still consolidate.
TEST(BwTreeTest, ReadOptimizedConsolidatesByUpdateCount) {
  BwTreeOptions opts;
  opts.delta_mode = DeltaMode::kReadOptimized;
  opts.consolidate_threshold = 5;
  opts.allow_split = false;
  TreeFixture f(opts);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(f.tree->Upsert("hot", "v" + std::to_string(i)).ok());
  }
  EXPECT_GT(f.tree->stats().consolidations.Get(), 0u);
  EXPECT_EQ(f.tree->Get("hot").value(), "v11");
}

}  // namespace
}  // namespace bg3::bwtree

namespace bg3::bwtree {
namespace {

// Failure injection: a corrupted base page must surface as Corruption on
// the zero-cache read path, not as silent wrong data.
TEST(BwTreeTest, CorruptedBasePageSurfacesOnZeroCacheRead) {
  BwTreeOptions opts;
  opts.consolidate_threshold = 2;  // force base images quickly
  opts.read_cache = ReadCacheMode::kNone;
  TreeFixture f(opts);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
  // Corrupt the newest valid base record on the base stream.
  auto records = f.store->TailRecords(0, cloud::PagePointer{}, 1000).value();
  ASSERT_FALSE(records.empty());
  bool corrupted = false;
  for (auto it = records.rbegin(); it != records.rend() && !corrupted; ++it) {
    corrupted = f.store->CorruptRecordForTesting(it->first, 20);
  }
  ASSERT_TRUE(corrupted);
  int corruption_errors = 0;
  for (int i = 0; i < 10; ++i) {
    auto v = f.tree->Get(Key(i));
    if (!v.ok() && v.status().IsCorruption()) ++corruption_errors;
  }
  EXPECT_GT(corruption_errors, 0);
}

// GC must refuse to relocate a corrupted record rather than propagate it.
TEST(BwTreeTest, GcRelocationStopsOnCorruptExtent) {
  BwTreeOptions opts;
  opts.consolidate_threshold = 2;
  TreeFixture f(opts, /*extent_capacity=*/512);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
  auto stats = f.store->SealedExtentStats(0);
  ASSERT_FALSE(stats.empty());
  // Corrupt something inside the first sealed extent.
  auto records = f.store->TailRecords(0, cloud::PagePointer{}, 1).value();
  ASSERT_FALSE(records.empty());
  ASSERT_TRUE(f.store->CorruptRecordForTesting(records[0].first, 5));
  auto read_back = f.store->ReadValidRecords(0, records[0].first.extent_id);
  // Either the record was already invalidated (fine) or reading it reports
  // corruption — never silent success with bad bytes.
  if (!read_back.ok()) {
    EXPECT_TRUE(read_back.status().IsCorruption());
  } else {
    for (const auto& [ptr, bytes] : read_back.value()) {
      EXPECT_NE(ptr, records[0].first);
    }
  }
}

}  // namespace
}  // namespace bg3::bwtree

namespace bg3::bwtree {
namespace {

// --- memory-bounded caching (BGS-as-cache semantics) -------------------------

TEST(BwTreeEvictionTest, EvictedPagesReloadTransparently) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 16;
  opts.consolidate_threshold = 4;
  TreeFixture f(opts);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), "v" + std::to_string(i)).ok());
  }
  const size_t pages = f.tree->LeafCount();
  ASSERT_GT(pages, 4u);
  const size_t evicted = f.tree->EvictColdPages(/*target_resident=*/2);
  EXPECT_GT(evicted, 0u);
  EXPECT_LE(f.tree->ResidentPageCount(), pages);
  const uint64_t reloads_before = f.tree->stats().page_reloads.Get();
  // Every key still readable; reloads happen on demand.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(f.tree->Get(Key(i)).value(), "v" + std::to_string(i)) << i;
  }
  EXPECT_GT(f.tree->stats().page_reloads.Get(), reloads_before);
}

TEST(BwTreeEvictionTest, WritesToEvictedPagesWork) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 16;
  opts.consolidate_threshold = 4;
  TreeFixture f(opts);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "v1").ok());
  (void)f.tree->EvictColdPages(0);
  // Updates (including ones that trigger consolidation and splits) must
  // transparently reload the base image.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "v2").ok());
  for (int i = 100; i < 160; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), "v2").ok());
  }
  for (int i = 0; i < 160; ++i) {
    EXPECT_EQ(f.tree->Get(Key(i)).value(), "v2") << i;
  }
}

TEST(BwTreeEvictionTest, ScansReloadEvictedPages) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 8;
  TreeFixture f(opts);
  for (int i = 0; i < 80; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
  (void)f.tree->EvictColdPages(0);
  std::vector<Entry> out;
  ASSERT_TRUE(f.tree->Scan({}, &out).ok());
  EXPECT_EQ(out.size(), 80u);
}

TEST(BwTreeEvictionTest, LruPrefersColdPages) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 8;
  TreeFixture f(opts);
  for (int i = 0; i < 80; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
  // Touch the page holding Key(0) so it is the hottest.
  ASSERT_TRUE(f.tree->Get(Key(0)).ok());
  const size_t resident_before = f.tree->ResidentPageCount();
  (void)f.tree->EvictColdPages(1);
  ASSERT_LT(f.tree->ResidentPageCount(), resident_before);
  // The hot page survived: reading Key(0) causes no reload.
  const uint64_t reloads = f.tree->stats().page_reloads.Get();
  ASSERT_TRUE(f.tree->Get(Key(0)).ok());
  EXPECT_EQ(f.tree->stats().page_reloads.Get(), reloads);
}

TEST(BwTreeEvictionTest, DirtyPagesAreNotEvicted) {
  BwTreeOptions opts;
  opts.flush_mode = FlushMode::kDeferred;
  opts.max_leaf_entries = 8;
  TreeFixture f(opts);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(f.tree->Upsert(Key(i), "v").ok());
  // Everything dirty: nothing evictable.
  EXPECT_EQ(f.tree->EvictColdPages(0), 0u);
  // After flushing, clean pages become evictable.
  (void)f.tree->FlushDirtyPages(1000);
  EXPECT_GT(f.tree->EvictColdPages(0), 0u);
  for (int i = 0; i < 40; ++i) EXPECT_TRUE(f.tree->Get(Key(i)).ok());
}

TEST(BwTreeEvictionTest, MemoryDropsAfterEviction) {
  BwTreeOptions opts;
  opts.max_leaf_entries = 64;
  TreeFixture f(opts);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(f.tree->Upsert(Key(i), std::string(100, 'x')).ok());
  }
  const size_t before = f.tree->ApproxMemoryBytes();
  (void)f.tree->EvictColdPages(2);
  EXPECT_LT(f.tree->ApproxMemoryBytes(), before / 2);
}

}  // namespace
}  // namespace bg3::bwtree
