# Empty compiler generated dependencies file for gc_property_test.
# This may be replaced when dependencies are built.
