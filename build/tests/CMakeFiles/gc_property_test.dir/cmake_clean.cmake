file(REMOVE_RECURSE
  "CMakeFiles/gc_property_test.dir/gc_property_test.cc.o"
  "CMakeFiles/gc_property_test.dir/gc_property_test.cc.o.d"
  "gc_property_test"
  "gc_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
