file(REMOVE_RECURSE
  "CMakeFiles/refstore_test.dir/refstore_test.cc.o"
  "CMakeFiles/refstore_test.dir/refstore_test.cc.o.d"
  "refstore_test"
  "refstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
