# Empty compiler generated dependencies file for refstore_test.
# This may be replaced when dependencies are built.
