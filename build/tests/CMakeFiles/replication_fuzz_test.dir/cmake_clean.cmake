file(REMOVE_RECURSE
  "CMakeFiles/replication_fuzz_test.dir/replication_fuzz_test.cc.o"
  "CMakeFiles/replication_fuzz_test.dir/replication_fuzz_test.cc.o.d"
  "replication_fuzz_test"
  "replication_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
