file(REMOVE_RECURSE
  "CMakeFiles/bytegraph_test.dir/bytegraph_test.cc.o"
  "CMakeFiles/bytegraph_test.dir/bytegraph_test.cc.o.d"
  "bytegraph_test"
  "bytegraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bytegraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
