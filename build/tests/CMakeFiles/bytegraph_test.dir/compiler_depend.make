# Empty compiler generated dependencies file for bytegraph_test.
# This may be replaced when dependencies are built.
