# Empty compiler generated dependencies file for bwtree_property_test.
# This may be replaced when dependencies are built.
