file(REMOVE_RECURSE
  "CMakeFiles/bwtree_property_test.dir/bwtree_property_test.cc.o"
  "CMakeFiles/bwtree_property_test.dir/bwtree_property_test.cc.o.d"
  "bwtree_property_test"
  "bwtree_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwtree_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
