file(REMOVE_RECURSE
  "CMakeFiles/bwtree_test.dir/bwtree_test.cc.o"
  "CMakeFiles/bwtree_test.dir/bwtree_test.cc.o.d"
  "bwtree_test"
  "bwtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
