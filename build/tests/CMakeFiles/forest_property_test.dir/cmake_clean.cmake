file(REMOVE_RECURSE
  "CMakeFiles/forest_property_test.dir/forest_property_test.cc.o"
  "CMakeFiles/forest_property_test.dir/forest_property_test.cc.o.d"
  "forest_property_test"
  "forest_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
