# Empty dependencies file for forest_property_test.
# This may be replaced when dependencies are built.
