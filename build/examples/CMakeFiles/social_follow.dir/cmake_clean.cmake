file(REMOVE_RECURSE
  "CMakeFiles/social_follow.dir/social_follow.cpp.o"
  "CMakeFiles/social_follow.dir/social_follow.cpp.o.d"
  "social_follow"
  "social_follow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_follow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
