# Empty compiler generated dependencies file for social_follow.
# This may be replaced when dependencies are built.
