# Empty compiler generated dependencies file for risk_control.
# This may be replaced when dependencies are built.
