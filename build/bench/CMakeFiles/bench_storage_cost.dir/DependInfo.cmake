
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_storage_cost.cc" "bench/CMakeFiles/bench_storage_cost.dir/bench_storage_cost.cc.o" "gcc" "bench/CMakeFiles/bench_storage_cost.dir/bench_storage_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bg3_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_bwtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_bytegraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_refstore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
