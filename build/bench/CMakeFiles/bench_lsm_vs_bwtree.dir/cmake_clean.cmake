file(REMOVE_RECURSE
  "CMakeFiles/bench_lsm_vs_bwtree.dir/bench_lsm_vs_bwtree.cc.o"
  "CMakeFiles/bench_lsm_vs_bwtree.dir/bench_lsm_vs_bwtree.cc.o.d"
  "bench_lsm_vs_bwtree"
  "bench_lsm_vs_bwtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsm_vs_bwtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
