# Empty compiler generated dependencies file for bench_lsm_vs_bwtree.
# This may be replaced when dependencies are built.
