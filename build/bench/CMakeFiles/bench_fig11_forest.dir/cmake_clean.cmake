file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_forest.dir/bench_fig11_forest.cc.o"
  "CMakeFiles/bench_fig11_forest.dir/bench_fig11_forest.cc.o.d"
  "bench_fig11_forest"
  "bench_fig11_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
