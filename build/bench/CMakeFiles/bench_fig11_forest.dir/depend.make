# Empty dependencies file for bench_fig11_forest.
# This may be replaced when dependencies are built.
