# Empty dependencies file for bench_fig12_recall.
# This may be replaced when dependencies are built.
