# Empty dependencies file for bench_fig9_read_amp.
# This may be replaced when dependencies are built.
