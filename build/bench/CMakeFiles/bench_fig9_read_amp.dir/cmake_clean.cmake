file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_read_amp.dir/bench_fig9_read_amp.cc.o"
  "CMakeFiles/bench_fig9_read_amp.dir/bench_fig9_read_amp.cc.o.d"
  "bench_fig9_read_amp"
  "bench_fig9_read_amp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_read_amp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
