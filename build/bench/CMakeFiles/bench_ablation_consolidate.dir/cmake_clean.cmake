file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_consolidate.dir/bench_ablation_consolidate.cc.o"
  "CMakeFiles/bench_ablation_consolidate.dir/bench_ablation_consolidate.cc.o.d"
  "bench_ablation_consolidate"
  "bench_ablation_consolidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_consolidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
