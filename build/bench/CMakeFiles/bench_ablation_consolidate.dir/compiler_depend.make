# Empty compiler generated dependencies file for bench_ablation_consolidate.
# This may be replaced when dependencies are built.
