# Empty compiler generated dependencies file for bench_ablation_gc_extent_size.
# This may be replaced when dependencies are built.
