# Empty dependencies file for bench_fig10_write_bw.
# This may be replaced when dependencies are built.
