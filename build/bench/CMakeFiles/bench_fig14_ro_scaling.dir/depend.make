# Empty dependencies file for bench_fig14_ro_scaling.
# This may be replaced when dependencies are built.
