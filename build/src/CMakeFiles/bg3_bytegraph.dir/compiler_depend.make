# Empty compiler generated dependencies file for bg3_bytegraph.
# This may be replaced when dependencies are built.
