file(REMOVE_RECURSE
  "CMakeFiles/bg3_bytegraph.dir/bytegraph/bytegraph_db.cc.o"
  "CMakeFiles/bg3_bytegraph.dir/bytegraph/bytegraph_db.cc.o.d"
  "libbg3_bytegraph.a"
  "libbg3_bytegraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_bytegraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
