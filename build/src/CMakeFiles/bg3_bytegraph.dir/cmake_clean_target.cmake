file(REMOVE_RECURSE
  "libbg3_bytegraph.a"
)
