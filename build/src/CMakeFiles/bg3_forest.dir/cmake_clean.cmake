file(REMOVE_RECURSE
  "CMakeFiles/bg3_forest.dir/forest/forest.cc.o"
  "CMakeFiles/bg3_forest.dir/forest/forest.cc.o.d"
  "libbg3_forest.a"
  "libbg3_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
