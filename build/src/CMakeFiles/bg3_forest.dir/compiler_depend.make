# Empty compiler generated dependencies file for bg3_forest.
# This may be replaced when dependencies are built.
