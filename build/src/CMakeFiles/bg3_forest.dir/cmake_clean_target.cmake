file(REMOVE_RECURSE
  "libbg3_forest.a"
)
