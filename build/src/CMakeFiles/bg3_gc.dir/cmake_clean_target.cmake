file(REMOVE_RECURSE
  "libbg3_gc.a"
)
