# Empty compiler generated dependencies file for bg3_gc.
# This may be replaced when dependencies are built.
