file(REMOVE_RECURSE
  "CMakeFiles/bg3_gc.dir/gc/extent_usage.cc.o"
  "CMakeFiles/bg3_gc.dir/gc/extent_usage.cc.o.d"
  "CMakeFiles/bg3_gc.dir/gc/policy.cc.o"
  "CMakeFiles/bg3_gc.dir/gc/policy.cc.o.d"
  "CMakeFiles/bg3_gc.dir/gc/space_reclaimer.cc.o"
  "CMakeFiles/bg3_gc.dir/gc/space_reclaimer.cc.o.d"
  "libbg3_gc.a"
  "libbg3_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
