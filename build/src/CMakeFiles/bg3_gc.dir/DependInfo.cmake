
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/extent_usage.cc" "src/CMakeFiles/bg3_gc.dir/gc/extent_usage.cc.o" "gcc" "src/CMakeFiles/bg3_gc.dir/gc/extent_usage.cc.o.d"
  "/root/repo/src/gc/policy.cc" "src/CMakeFiles/bg3_gc.dir/gc/policy.cc.o" "gcc" "src/CMakeFiles/bg3_gc.dir/gc/policy.cc.o.d"
  "/root/repo/src/gc/space_reclaimer.cc" "src/CMakeFiles/bg3_gc.dir/gc/space_reclaimer.cc.o" "gcc" "src/CMakeFiles/bg3_gc.dir/gc/space_reclaimer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bg3_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_bwtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
