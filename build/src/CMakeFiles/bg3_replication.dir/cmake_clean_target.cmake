file(REMOVE_RECURSE
  "libbg3_replication.a"
)
