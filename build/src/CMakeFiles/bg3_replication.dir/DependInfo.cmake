
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/channel.cc" "src/CMakeFiles/bg3_replication.dir/replication/channel.cc.o" "gcc" "src/CMakeFiles/bg3_replication.dir/replication/channel.cc.o.d"
  "/root/repo/src/replication/cluster.cc" "src/CMakeFiles/bg3_replication.dir/replication/cluster.cc.o" "gcc" "src/CMakeFiles/bg3_replication.dir/replication/cluster.cc.o.d"
  "/root/repo/src/replication/forwarding.cc" "src/CMakeFiles/bg3_replication.dir/replication/forwarding.cc.o" "gcc" "src/CMakeFiles/bg3_replication.dir/replication/forwarding.cc.o.d"
  "/root/repo/src/replication/ro_node.cc" "src/CMakeFiles/bg3_replication.dir/replication/ro_node.cc.o" "gcc" "src/CMakeFiles/bg3_replication.dir/replication/ro_node.cc.o.d"
  "/root/repo/src/replication/rw_node.cc" "src/CMakeFiles/bg3_replication.dir/replication/rw_node.cc.o" "gcc" "src/CMakeFiles/bg3_replication.dir/replication/rw_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bg3_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_bwtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
