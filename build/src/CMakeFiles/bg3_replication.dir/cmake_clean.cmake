file(REMOVE_RECURSE
  "CMakeFiles/bg3_replication.dir/replication/channel.cc.o"
  "CMakeFiles/bg3_replication.dir/replication/channel.cc.o.d"
  "CMakeFiles/bg3_replication.dir/replication/cluster.cc.o"
  "CMakeFiles/bg3_replication.dir/replication/cluster.cc.o.d"
  "CMakeFiles/bg3_replication.dir/replication/forwarding.cc.o"
  "CMakeFiles/bg3_replication.dir/replication/forwarding.cc.o.d"
  "CMakeFiles/bg3_replication.dir/replication/ro_node.cc.o"
  "CMakeFiles/bg3_replication.dir/replication/ro_node.cc.o.d"
  "CMakeFiles/bg3_replication.dir/replication/rw_node.cc.o"
  "CMakeFiles/bg3_replication.dir/replication/rw_node.cc.o.d"
  "libbg3_replication.a"
  "libbg3_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
