# Empty dependencies file for bg3_replication.
# This may be replaced when dependencies are built.
