file(REMOVE_RECURSE
  "CMakeFiles/bg3_common.dir/common/clock.cc.o"
  "CMakeFiles/bg3_common.dir/common/clock.cc.o.d"
  "CMakeFiles/bg3_common.dir/common/coding.cc.o"
  "CMakeFiles/bg3_common.dir/common/coding.cc.o.d"
  "CMakeFiles/bg3_common.dir/common/crc32.cc.o"
  "CMakeFiles/bg3_common.dir/common/crc32.cc.o.d"
  "CMakeFiles/bg3_common.dir/common/histogram.cc.o"
  "CMakeFiles/bg3_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/bg3_common.dir/common/metrics.cc.o"
  "CMakeFiles/bg3_common.dir/common/metrics.cc.o.d"
  "CMakeFiles/bg3_common.dir/common/random.cc.o"
  "CMakeFiles/bg3_common.dir/common/random.cc.o.d"
  "CMakeFiles/bg3_common.dir/common/status.cc.o"
  "CMakeFiles/bg3_common.dir/common/status.cc.o.d"
  "CMakeFiles/bg3_common.dir/common/threadpool.cc.o"
  "CMakeFiles/bg3_common.dir/common/threadpool.cc.o.d"
  "libbg3_common.a"
  "libbg3_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
