file(REMOVE_RECURSE
  "libbg3_common.a"
)
