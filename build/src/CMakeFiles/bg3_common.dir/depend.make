# Empty dependencies file for bg3_common.
# This may be replaced when dependencies are built.
