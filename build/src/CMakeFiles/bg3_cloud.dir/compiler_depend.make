# Empty compiler generated dependencies file for bg3_cloud.
# This may be replaced when dependencies are built.
