file(REMOVE_RECURSE
  "CMakeFiles/bg3_cloud.dir/cloud/cloud_store.cc.o"
  "CMakeFiles/bg3_cloud.dir/cloud/cloud_store.cc.o.d"
  "CMakeFiles/bg3_cloud.dir/cloud/extent.cc.o"
  "CMakeFiles/bg3_cloud.dir/cloud/extent.cc.o.d"
  "CMakeFiles/bg3_cloud.dir/cloud/latency_model.cc.o"
  "CMakeFiles/bg3_cloud.dir/cloud/latency_model.cc.o.d"
  "CMakeFiles/bg3_cloud.dir/cloud/stream.cc.o"
  "CMakeFiles/bg3_cloud.dir/cloud/stream.cc.o.d"
  "libbg3_cloud.a"
  "libbg3_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
