
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/cloud_store.cc" "src/CMakeFiles/bg3_cloud.dir/cloud/cloud_store.cc.o" "gcc" "src/CMakeFiles/bg3_cloud.dir/cloud/cloud_store.cc.o.d"
  "/root/repo/src/cloud/extent.cc" "src/CMakeFiles/bg3_cloud.dir/cloud/extent.cc.o" "gcc" "src/CMakeFiles/bg3_cloud.dir/cloud/extent.cc.o.d"
  "/root/repo/src/cloud/latency_model.cc" "src/CMakeFiles/bg3_cloud.dir/cloud/latency_model.cc.o" "gcc" "src/CMakeFiles/bg3_cloud.dir/cloud/latency_model.cc.o.d"
  "/root/repo/src/cloud/stream.cc" "src/CMakeFiles/bg3_cloud.dir/cloud/stream.cc.o" "gcc" "src/CMakeFiles/bg3_cloud.dir/cloud/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bg3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
