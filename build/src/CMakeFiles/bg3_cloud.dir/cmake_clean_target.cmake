file(REMOVE_RECURSE
  "libbg3_cloud.a"
)
