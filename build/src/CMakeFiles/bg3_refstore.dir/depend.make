# Empty dependencies file for bg3_refstore.
# This may be replaced when dependencies are built.
