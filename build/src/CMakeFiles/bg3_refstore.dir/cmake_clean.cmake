file(REMOVE_RECURSE
  "CMakeFiles/bg3_refstore.dir/refstore/ref_graph_store.cc.o"
  "CMakeFiles/bg3_refstore.dir/refstore/ref_graph_store.cc.o.d"
  "libbg3_refstore.a"
  "libbg3_refstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_refstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
