file(REMOVE_RECURSE
  "libbg3_refstore.a"
)
