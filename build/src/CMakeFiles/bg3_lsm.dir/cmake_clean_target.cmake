file(REMOVE_RECURSE
  "libbg3_lsm.a"
)
