# Empty dependencies file for bg3_lsm.
# This may be replaced when dependencies are built.
