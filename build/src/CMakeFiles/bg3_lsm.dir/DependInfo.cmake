
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/compaction.cc" "src/CMakeFiles/bg3_lsm.dir/lsm/compaction.cc.o" "gcc" "src/CMakeFiles/bg3_lsm.dir/lsm/compaction.cc.o.d"
  "/root/repo/src/lsm/lsm_db.cc" "src/CMakeFiles/bg3_lsm.dir/lsm/lsm_db.cc.o" "gcc" "src/CMakeFiles/bg3_lsm.dir/lsm/lsm_db.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/CMakeFiles/bg3_lsm.dir/lsm/memtable.cc.o" "gcc" "src/CMakeFiles/bg3_lsm.dir/lsm/memtable.cc.o.d"
  "/root/repo/src/lsm/sstable.cc" "src/CMakeFiles/bg3_lsm.dir/lsm/sstable.cc.o" "gcc" "src/CMakeFiles/bg3_lsm.dir/lsm/sstable.cc.o.d"
  "/root/repo/src/lsm/version.cc" "src/CMakeFiles/bg3_lsm.dir/lsm/version.cc.o" "gcc" "src/CMakeFiles/bg3_lsm.dir/lsm/version.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bg3_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
