file(REMOVE_RECURSE
  "CMakeFiles/bg3_lsm.dir/lsm/compaction.cc.o"
  "CMakeFiles/bg3_lsm.dir/lsm/compaction.cc.o.d"
  "CMakeFiles/bg3_lsm.dir/lsm/lsm_db.cc.o"
  "CMakeFiles/bg3_lsm.dir/lsm/lsm_db.cc.o.d"
  "CMakeFiles/bg3_lsm.dir/lsm/memtable.cc.o"
  "CMakeFiles/bg3_lsm.dir/lsm/memtable.cc.o.d"
  "CMakeFiles/bg3_lsm.dir/lsm/sstable.cc.o"
  "CMakeFiles/bg3_lsm.dir/lsm/sstable.cc.o.d"
  "CMakeFiles/bg3_lsm.dir/lsm/version.cc.o"
  "CMakeFiles/bg3_lsm.dir/lsm/version.cc.o.d"
  "libbg3_lsm.a"
  "libbg3_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
