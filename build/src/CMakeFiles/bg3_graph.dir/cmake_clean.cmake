file(REMOVE_RECURSE
  "CMakeFiles/bg3_graph.dir/graph/algorithms.cc.o"
  "CMakeFiles/bg3_graph.dir/graph/algorithms.cc.o.d"
  "CMakeFiles/bg3_graph.dir/graph/edge.cc.o"
  "CMakeFiles/bg3_graph.dir/graph/edge.cc.o.d"
  "CMakeFiles/bg3_graph.dir/graph/pattern.cc.o"
  "CMakeFiles/bg3_graph.dir/graph/pattern.cc.o.d"
  "CMakeFiles/bg3_graph.dir/graph/subgraph.cc.o"
  "CMakeFiles/bg3_graph.dir/graph/subgraph.cc.o.d"
  "CMakeFiles/bg3_graph.dir/graph/traversal.cc.o"
  "CMakeFiles/bg3_graph.dir/graph/traversal.cc.o.d"
  "libbg3_graph.a"
  "libbg3_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
