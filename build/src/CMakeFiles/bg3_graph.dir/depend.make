# Empty dependencies file for bg3_graph.
# This may be replaced when dependencies are built.
