file(REMOVE_RECURSE
  "libbg3_graph.a"
)
