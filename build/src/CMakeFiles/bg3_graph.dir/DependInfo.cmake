
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/bg3_graph.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/bg3_graph.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/edge.cc" "src/CMakeFiles/bg3_graph.dir/graph/edge.cc.o" "gcc" "src/CMakeFiles/bg3_graph.dir/graph/edge.cc.o.d"
  "/root/repo/src/graph/pattern.cc" "src/CMakeFiles/bg3_graph.dir/graph/pattern.cc.o" "gcc" "src/CMakeFiles/bg3_graph.dir/graph/pattern.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/CMakeFiles/bg3_graph.dir/graph/subgraph.cc.o" "gcc" "src/CMakeFiles/bg3_graph.dir/graph/subgraph.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/CMakeFiles/bg3_graph.dir/graph/traversal.cc.o" "gcc" "src/CMakeFiles/bg3_graph.dir/graph/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bg3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
