# Empty compiler generated dependencies file for bg3_bwtree.
# This may be replaced when dependencies are built.
