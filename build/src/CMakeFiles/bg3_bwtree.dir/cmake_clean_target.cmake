file(REMOVE_RECURSE
  "libbg3_bwtree.a"
)
