file(REMOVE_RECURSE
  "CMakeFiles/bg3_bwtree.dir/bwtree/bwtree.cc.o"
  "CMakeFiles/bg3_bwtree.dir/bwtree/bwtree.cc.o.d"
  "CMakeFiles/bg3_bwtree.dir/bwtree/iterator.cc.o"
  "CMakeFiles/bg3_bwtree.dir/bwtree/iterator.cc.o.d"
  "CMakeFiles/bg3_bwtree.dir/bwtree/mapping_table.cc.o"
  "CMakeFiles/bg3_bwtree.dir/bwtree/mapping_table.cc.o.d"
  "CMakeFiles/bg3_bwtree.dir/bwtree/page.cc.o"
  "CMakeFiles/bg3_bwtree.dir/bwtree/page.cc.o.d"
  "libbg3_bwtree.a"
  "libbg3_bwtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_bwtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
