
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwtree/bwtree.cc" "src/CMakeFiles/bg3_bwtree.dir/bwtree/bwtree.cc.o" "gcc" "src/CMakeFiles/bg3_bwtree.dir/bwtree/bwtree.cc.o.d"
  "/root/repo/src/bwtree/iterator.cc" "src/CMakeFiles/bg3_bwtree.dir/bwtree/iterator.cc.o" "gcc" "src/CMakeFiles/bg3_bwtree.dir/bwtree/iterator.cc.o.d"
  "/root/repo/src/bwtree/mapping_table.cc" "src/CMakeFiles/bg3_bwtree.dir/bwtree/mapping_table.cc.o" "gcc" "src/CMakeFiles/bg3_bwtree.dir/bwtree/mapping_table.cc.o.d"
  "/root/repo/src/bwtree/page.cc" "src/CMakeFiles/bg3_bwtree.dir/bwtree/page.cc.o" "gcc" "src/CMakeFiles/bg3_bwtree.dir/bwtree/page.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bg3_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bg3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
