file(REMOVE_RECURSE
  "libbg3_query.a"
)
