# Empty dependencies file for bg3_query.
# This may be replaced when dependencies are built.
