file(REMOVE_RECURSE
  "CMakeFiles/bg3_query.dir/query/query.cc.o"
  "CMakeFiles/bg3_query.dir/query/query.cc.o.d"
  "libbg3_query.a"
  "libbg3_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
