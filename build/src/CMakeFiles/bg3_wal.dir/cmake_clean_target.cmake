file(REMOVE_RECURSE
  "libbg3_wal.a"
)
