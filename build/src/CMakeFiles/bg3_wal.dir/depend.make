# Empty dependencies file for bg3_wal.
# This may be replaced when dependencies are built.
