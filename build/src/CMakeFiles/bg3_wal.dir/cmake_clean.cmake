file(REMOVE_RECURSE
  "CMakeFiles/bg3_wal.dir/wal/reader.cc.o"
  "CMakeFiles/bg3_wal.dir/wal/reader.cc.o.d"
  "CMakeFiles/bg3_wal.dir/wal/record.cc.o"
  "CMakeFiles/bg3_wal.dir/wal/record.cc.o.d"
  "CMakeFiles/bg3_wal.dir/wal/writer.cc.o"
  "CMakeFiles/bg3_wal.dir/wal/writer.cc.o.d"
  "libbg3_wal.a"
  "libbg3_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
