file(REMOVE_RECURSE
  "CMakeFiles/bg3_workload.dir/workload/driver.cc.o"
  "CMakeFiles/bg3_workload.dir/workload/driver.cc.o.d"
  "CMakeFiles/bg3_workload.dir/workload/graph_gen.cc.o"
  "CMakeFiles/bg3_workload.dir/workload/graph_gen.cc.o.d"
  "CMakeFiles/bg3_workload.dir/workload/workloads.cc.o"
  "CMakeFiles/bg3_workload.dir/workload/workloads.cc.o.d"
  "libbg3_workload.a"
  "libbg3_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
