# Empty dependencies file for bg3_workload.
# This may be replaced when dependencies are built.
