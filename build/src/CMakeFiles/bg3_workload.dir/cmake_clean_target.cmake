file(REMOVE_RECURSE
  "libbg3_workload.a"
)
