file(REMOVE_RECURSE
  "CMakeFiles/bg3_core.dir/core/db_stats.cc.o"
  "CMakeFiles/bg3_core.dir/core/db_stats.cc.o.d"
  "CMakeFiles/bg3_core.dir/core/graph_db.cc.o"
  "CMakeFiles/bg3_core.dir/core/graph_db.cc.o.d"
  "CMakeFiles/bg3_core.dir/core/options.cc.o"
  "CMakeFiles/bg3_core.dir/core/options.cc.o.d"
  "libbg3_core.a"
  "libbg3_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg3_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
