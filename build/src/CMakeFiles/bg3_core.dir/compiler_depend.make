# Empty compiler generated dependencies file for bg3_core.
# This may be replaced when dependencies are built.
