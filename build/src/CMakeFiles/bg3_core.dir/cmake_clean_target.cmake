file(REMOVE_RECURSE
  "libbg3_core.a"
)
