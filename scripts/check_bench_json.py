#!/usr/bin/env python3
"""Validates BENCH_<name>.json files emitted by bench::BenchReport.

Usage:
  check_bench_json.py BENCH_a.json [BENCH_b.json ...]
  check_bench_json.py --trace bg3_trace.json --min-layers 4

Checks (bench mode):
  - all schema keys present: schema_version, bench, config, series,
    scalars, latency_ns, counters, gauges, io
  - every latency histogram has monotone percentiles
    (min <= p50 <= p95 <= p99 <= max) and count consistent with them
  - counters are non-negative integers
  - no metric was registered twice (bg3.registry.collisions == 0)
  - the io breakdown carries all expected fields

Checks (--trace mode): the chrome-tracing file parses, has events, and
spans cover at least --min-layers distinct layers (trace categories).
"""
import argparse
import json
import sys

REQUIRED_KEYS = [
    "schema_version", "bench", "config", "series", "scalars",
    "latency_ns", "counters", "gauges", "io",
]
IO_FIELDS = [
    "append_ops", "append_bytes", "read_ops", "read_bytes",
    "gc_moved_bytes", "extents_freed", "manifest_updates",
    "injected_faults", "retries", "retry_exhausted",
]
KNOWN_LAYERS = {
    "api", "bytegraph", "query", "forest", "bwtree", "wal",
    "cloud", "gc", "replication", "trace",
}

# Per-bench structural expectations, keyed by the JSON's "bench" name.
# `series`: names that must each appear in at least one row;
# `scalars`: (name, min_value) pairs that must be present and >= min;
# `scalar_order`: (smaller, larger) pairs — both must be present and
# smaller <= larger (pins orderings like "workload-aware GC costs no more
# than FIFO" without hard-coding machine-dependent absolute dollars).
BENCH_EXPECTATIONS = {
    "read_scaling": {
        "series": [
            "read_optimized_hit", "read_optimized_miss",
            "traditional_hit", "traditional_miss",
        ],
        # The shared-latch read path must scale: >= 3x modeled speedup at
        # 8 threads on the cache-hit workload (the PR's acceptance bar).
        "scalars": [("modeled_speedup_8t_hit", 3.0)],
    },
    "overload": {
        "series": ["protected", "unprotected"],
        # With protection on, goodput at 4x offered load must retain
        # >= 70% of the goodput at sustainable (1x) load (DESIGN.md §5.5
        # acceptance bar); the unprotected series shows the collapse.
        "scalars": [("goodput_retention_4x", 0.7)],
    },
    "restart": {
        "series": ["checkpointed", "full_replay"],
        # Instant-restart floors (DESIGN.md §5.7) are deterministic byte
        # ratios, immune to machine speed: the checkpointed restart must
        # skip >= 50% of the 16x WAL, and the full-replay baseline must
        # read >= 4x more bytes than the checkpointed path. Wall-clock
        # time_to_first_read_us / time_to_full_qps_us ride along in the
        # series rows for inspection.
        "scalars": [("replay_savings_16x", 0.5),
                    ("full_vs_checkpoint_replay_ratio_16x", 4.0)],
    },
    "failover": {
        "series": ["checkpointed", "full_replay"],
        # Failover floors (DESIGN.md §5.10), deterministic byte ratios:
        # promoting a cold follower with a checkpoint manifest must replay
        # <= 50% of the 16x WAL backlog (the catch-up is bounded by the
        # checkpoint suffix, not total WAL length), and the no-checkpoint
        # promotion must read >= 4x more bytes. Wall-clock
        # unavailability_us rides along in the series rows for inspection.
        "scalars": [("promotion_replay_savings_16x", 0.5),
                    ("full_vs_checkpoint_promotion_replay_ratio_16x", 4.0)],
    },
    "write_latency": {
        "series": ["sync", "pipelined"],
        # Pipelined-WAL acceptance bar (DESIGN.md §5.9): at the default
        # group size the deepest pipeline's enqueue-to-ack p99 must be at
        # least 5x below the sync baseline's. Both runs pay identical
        # simulated I/O in real wall time, so the ratio isolates the
        # head-of-line blocking the pipeline removes and is immune to
        # machine speed.
        "scalars": [("p99_speedup_default_group", 5.0)],
    },
    "storage_cost": {
        "series": ["bytes", "gc_cost"],
        # TTL workload under per-GB-written pricing: FIFO relocates
        # soon-to-expire bytes that workload-aware GC lets die in place, so
        # the workload-aware bill must come out <= the FIFO bill.
        "scalar_order": [("estimated_monthly_cost_usd_workload_aware",
                          "estimated_monthly_cost_usd_fifo")],
    },
}

errors = []


def fail(path, msg):
    errors.append(f"{path}: {msg}")


def check_bench(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot parse: {e}")
        return

    for key in REQUIRED_KEYS:
        if key not in doc:
            fail(path, f"missing required key '{key}'")
    if errors:
        return

    if doc["schema_version"] != 1:
        fail(path, f"unexpected schema_version {doc['schema_version']}")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        fail(path, "'bench' must be a non-empty string")
    if not isinstance(doc["series"], list):
        fail(path, "'series' must be an array")
    else:
        for i, row in enumerate(doc["series"]):
            if not isinstance(row, dict) or "series" not in row or "x" not in row:
                fail(path, f"series[{i}] must be an object with series/x keys")

    for name, h in doc["latency_ns"].items():
        missing = [k for k in ("count", "mean", "min", "p50", "p95", "p99", "max")
                   if k not in h]
        if missing:
            fail(path, f"latency_ns[{name}] missing {missing}")
            continue
        if h["count"] < 0:
            fail(path, f"latency_ns[{name}] negative count")
        if h["count"] > 0:
            if not (h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"]):
                fail(path, f"latency_ns[{name}] percentiles not monotone: {h}")
            if h["mean"] < h["min"] or h["mean"] > h["max"]:
                fail(path, f"latency_ns[{name}] mean outside [min,max]: {h}")

    for name, v in doc["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(path, f"counter {name} not a non-negative integer: {v!r}")

    collisions = doc["counters"].get("bg3.registry.collisions")
    if collisions is None:
        fail(path, "counters missing bg3.registry.collisions")
    elif collisions != 0:
        fail(path, f"{collisions} metric name collision(s) — a metric was "
                   "registered twice")

    for field in IO_FIELDS:
        if field not in doc["io"]:
            fail(path, f"io breakdown missing '{field}'")

    expect = BENCH_EXPECTATIONS.get(doc["bench"])
    if expect:
        present = {row.get("series") for row in doc["series"]
                   if isinstance(row, dict)}
        for name in expect.get("series", []):
            if name not in present:
                fail(path, f"expected series '{name}' missing")
        scalars = doc.get("scalars", {})
        for name, minimum in expect.get("scalars", []):
            if name not in scalars:
                fail(path, f"expected scalar '{name}' missing")
            elif not isinstance(scalars[name], (int, float)) or \
                    scalars[name] < minimum:
                fail(path, f"scalar {name}={scalars[name]!r} below "
                           f"required minimum {minimum}")
        for smaller, larger in expect.get("scalar_order", []):
            missing = [n for n in (smaller, larger) if n not in scalars]
            if missing:
                fail(path, f"expected scalar(s) {missing} missing")
            elif scalars[smaller] > scalars[larger]:
                fail(path, f"scalar order violated: {smaller}="
                           f"{scalars[smaller]!r} > {larger}="
                           f"{scalars[larger]!r}")

    if not doc["latency_ns"]:
        # Per-layer latency is the point of the schema; an empty map means
        # timing was disabled or the bench bypassed the instrumented layers.
        print(f"{path}: note: latency_ns is empty "
              "(no instrumented layer was exercised)")

    print(f"{path}: OK ({len(doc['latency_ns'])} histograms, "
          f"{len(doc['series'])} series rows, "
          f"io.append_ops={doc['io']['append_ops']})")


def check_trace(path, min_layers):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot parse: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "no traceEvents")
        return
    layers = {e.get("cat") for e in events} & KNOWN_LAYERS
    if len(layers) < min_layers:
        fail(path, f"only {sorted(layers)} layers traced, "
                   f"need >= {min_layers}")
        return
    print(f"{path}: OK ({len(events)} events, layers: {sorted(layers)})")


def main():
    p = argparse.ArgumentParser()
    p.add_argument("files", nargs="*")
    p.add_argument("--trace", help="validate a chrome-tracing JSON instead")
    p.add_argument("--min-layers", type=int, default=4)
    args = p.parse_args()

    if args.trace:
        check_trace(args.trace, args.min_layers)
    if not args.files and not args.trace:
        p.error("no input files")
    for path in args.files:
        check_bench(path)

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
