#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the BG3 sources using the
# compile_commands.json exported by a CMake configure.
#
# Usage:
#   scripts/run_clang_tidy.sh [build-dir] [source-glob...]
#
#   build-dir     directory containing compile_commands.json (default: build)
#   source-glob   restrict to matching files (default: everything in src/)
#
# Exits 0 if clang-tidy is not installed (the container toolchain is GCC-only;
# CI installs clang-tools for the lint job) so the script can sit in a
# pipeline without breaking environments that lack it.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
shift || true

TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY_BIN}" >/dev/null 2>&1; then
  echo "run_clang_tidy: ${TIDY_BIN} not found; skipping (install clang-tidy" \
       "or set CLANG_TIDY=/path/to/clang-tidy)" >&2
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "run_clang_tidy: ${BUILD_DIR}/compile_commands.json missing." >&2
  echo "Configure first: cmake -B ${BUILD_DIR} -S ${REPO_ROOT}" >&2
  exit 1
fi

if [[ $# -gt 0 ]]; then
  FILES=("$@")
else
  mapfile -t FILES < <(find "${REPO_ROOT}/src" -name '*.cc' | sort)
fi

echo "run_clang_tidy: checking ${#FILES[@]} files against ${BUILD_DIR}" >&2

# run-clang-tidy parallelizes when available; otherwise loop.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${TIDY_BIN}" -p "${BUILD_DIR}" \
    -quiet "${FILES[@]}"
else
  STATUS=0
  for f in "${FILES[@]}"; do
    "${TIDY_BIN}" -p "${BUILD_DIR}" --quiet "$f" || STATUS=1
  done
  exit "${STATUS}"
fi
