#!/usr/bin/env python3
"""End-to-end validation of the debug/observability HTTP endpoint.

Launches a binary (default: build/examples/bg3_stats) with the debug server
enabled, parses the "debug server listening on 127.0.0.1:PORT" line, then
scrapes and validates every route while the process keeps serving:

  /healthz   JSON: status "ok"; when a Bg3Cluster is registered as a
             health source, every partition reports node roles
             (leader/follower/zombie), leader terms >= 1 and a committed
             WAL cursor (DESIGN.md §5.10)
  /metrics   Prometheus text exposition: every sample line parses, known
             bg3 counters are present and non-negative
  /tracez    chrome-tracing JSON: traceEvents parse; when a traced request
             ran, its span tree covers >= --min-layers layers
  /costz     cost JSON: pricing block, cloud bill arithmetic consistent
             with the advertised pricing, per-layer attribution present

Usage:
  check_debug_endpoints.py [--binary build/examples/bg3_stats]
                           [--min-layers 4] [--serve-ms 20000]
"""
import argparse
import json
import os
import re
import subprocess
import sys
import urllib.request

errors = []


def fail(msg):
    errors.append(msg)


def fetch(port, path):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read().decode("utf-8")


VALID_ROLES = {"leader", "follower", "zombie"}


def check_healthz(port):
    status, body = fetch(port, "/healthz")
    if status != 200:
        fail(f"/healthz: status={status} body={body!r}")
        return
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        fail(f"/healthz: not JSON: {e} body={body!r}")
        return
    if doc.get("status") != "ok":
        fail(f"/healthz: status field {doc.get('status')!r} != 'ok'")
        return
    # Failover health (DESIGN.md §5.10): every registered cluster source
    # must report well-formed per-partition role/term/cursor entries.
    clusters = 0
    for name, source in doc.get("sources", {}).items():
        parts = source.get("partitions")
        if parts is None:
            continue
        clusters += 1
        if not parts:
            fail(f"/healthz: source {name} has no partitions")
            return
        for part in parts:
            nodes = part.get("nodes", [])
            roles = [n.get("role") for n in nodes]
            bad = [r for r in roles if r not in VALID_ROLES]
            if bad:
                fail(f"/healthz: source {name} partition "
                     f"{part.get('partition')} has invalid roles {bad}")
                return
            if "leader" not in roles or "follower" not in roles:
                fail(f"/healthz: source {name} partition "
                     f"{part.get('partition')} lacks a leader+follower "
                     f"(roles: {roles})")
                return
            for n in nodes:
                if n["role"] == "leader":
                    if not isinstance(n.get("term"), int) or n["term"] < 1:
                        fail(f"/healthz: source {name} leader term "
                             f"{n.get('term')!r} invalid")
                        return
                    committed = n.get("committed", {})
                    for key in ("term", "seq", "extent", "offset"):
                        if key not in committed:
                            fail(f"/healthz: source {name} leader committed "
                                 f"cursor missing '{key}'")
                            return
                elif n["role"] == "follower":
                    if "wal_offset" not in n:
                        fail(f"/healthz: source {name} follower missing "
                             "wal_offset")
                        return
    if clusters == 0:
        fail("/healthz: no cluster health source registered "
             "(the demo builds a Bg3Cluster and fails one leader over)")
        return
    print(f"/healthz: OK ({clusters} cluster source(s))")


PROM_LINE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+naif]+)$")


def check_metrics(port):
    status, body = fetch(port, "/metrics")
    if status != 200:
        fail(f"/metrics: status={status}")
        return
    samples = {}
    for line in body.splitlines():
        if not line or line.startswith("#"):
            continue
        m = PROM_LINE.match(line)
        if not m:
            fail(f"/metrics: unparseable exposition line {line!r}")
            return
        if not m.group(2):  # plain (unlabeled) sample
            samples[m.group(1)] = float(m.group(3))
    for required in ("bg3_cloud_store0_append_ops",
                     "bg3_cloud_store0_read_ops",
                     "bg3_registry_collisions"):
        if required not in samples:
            fail(f"/metrics: missing {required}")
    if samples.get("bg3_registry_collisions", 0) != 0:
        fail("/metrics: metric name collisions registered")
    for name, v in samples.items():
        if name.startswith("bg3_") and v < 0:
            fail(f"/metrics: negative sample {name}={v}")
    print(f"/metrics: OK ({len(samples)} unlabeled samples)")


def check_tracez(port, min_layers):
    status, body = fetch(port, "/tracez")
    if status != 200:
        fail(f"/tracez: status={status}")
        return
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        fail(f"/tracez: not JSON: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("/tracez: no traceEvents array")
        return
    traces = doc.get("traces", [])
    if not traces:
        fail("/tracez: no retained traces (the demo runs a traced request)")
        return
    layers = {e.get("cat") for e in events if isinstance(e, dict)}
    layers.discard(None)
    if len(layers) < min_layers:
        fail(f"/tracez: spans cover only {sorted(layers)}, "
             f"need >= {min_layers} layers")
        return
    # Causality: every parent id referenced resolves within the document.
    span_ids = {e["args"]["span"] for e in events
                if isinstance(e.get("args"), dict) and "span" in e["args"]}
    for e in events:
        args = e.get("args")
        if not isinstance(args, dict):
            continue
        parent = args.get("parent", 0)
        if parent and parent not in span_ids:
            fail(f"/tracez: dangling parent span {parent}")
            return
    print(f"/tracez: OK ({len(traces)} retained traces, "
          f"layers: {sorted(layers)})")


def check_costz(port):
    status, body = fetch(port, "/costz")
    if status != 200:
        fail(f"/costz: status={status}")
        return
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        fail(f"/costz: not JSON: {e}")
        return
    for key in ("pricing", "cloud", "by_class", "by_layer"):
        if key not in doc:
            fail(f"/costz: missing '{key}'")
            return
    pricing, cloud = doc["pricing"], doc["cloud"]
    # The bill must be consistent with the advertised pricing.
    gib = 1024.0 ** 3
    expect_read = (cloud["read_ops"] * pricing["usd_per_read_op"] +
                   cloud["read_bytes"] / gib * pricing["usd_per_gb_read"])
    if abs(cloud["read_cost_usd"] - expect_read) > 1e-9 + 1e-6 * expect_read:
        fail(f"/costz: read_cost_usd {cloud['read_cost_usd']} != "
             f"recomputed {expect_read}")
    if cloud["append_ops"] <= 0:
        fail("/costz: no appends billed after a write workload")
    if not doc["by_layer"]:
        fail("/costz: by_layer attribution empty "
             "(traced request did not fold)")
    if not doc["by_class"]:
        fail("/costz: by_class attribution empty")
    print(f"/costz: OK (total ${cloud['total_cost_usd']:.6f}, "
          f"layers: {sorted(doc['by_layer'])}, "
          f"classes: {sorted(doc['by_class'])})")


def main():
    p = argparse.ArgumentParser()
    p.add_argument("--binary", default="build/examples/bg3_stats")
    p.add_argument("--min-layers", type=int, default=4)
    p.add_argument("--serve-ms", type=int, default=20000)
    args = p.parse_args()

    env = dict(os.environ)
    env["BG3_DEBUG_SERVER"] = "1"
    env["BG3_SERVE_MS"] = str(args.serve_ms)
    proc = subprocess.Popen([args.binary], env=env,
                            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                            text=True)
    port = None
    try:
        for line in proc.stdout:
            m = re.match(r"debug server listening on 127\.0\.0\.1:(\d+)", line)
            if m:
                port = int(m.group(1))
                break
        if port is None:
            print("FAIL: no 'debug server listening' line", file=sys.stderr)
            return 1
        # Wait for the workload + traced request before scraping: the serve
        # line is printed at startup, "serving debug endpoints" at the end.
        for line in proc.stdout:
            if line.startswith("serving debug endpoints"):
                break
        check_healthz(port)
        check_metrics(port)
        check_tracez(port, args.min_layers)
        check_costz(port)
    finally:
        proc.terminate()
        proc.wait(timeout=30)

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print("debug endpoints: all OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
