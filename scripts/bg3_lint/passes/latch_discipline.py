"""latch-discipline: no blocking work while a bg3 latch is held.

Seeds: functions annotated BG3_BLOCKING (cloud-store I/O, WAL append/flush,
thread-pool waits, retry/backoff sleeps, admission-queue waits) plus a small
set of blocking primitives recognized by name (sleep_for, condition-variable
waits, thread joins). Blocking-ness propagates transitively over the
name-resolved call graph; a function annotated BG3_NO_BLOCKING stops
propagation (it asserts the property) but is itself flagged if its body can
reach a blocking call.

Held regions come from the source model: RAII guards (MutexLock /
WriterMutexLock / ReaderMutexLock, std lock holders over bg3 types),
explicit Lock()/Unlock() pairs, and BG3_REQUIRES preconditions (the whole
body counts as held). std::mutex members are normally out of scope — only
the annotated bg3::Mutex / bg3::SharedMutex capabilities participate —
with one exception: inside the WAL pipeline classes (WAL_PIPELINE_CLASSES)
std::mutex guard regions are checked too, because blocking cloud I/O under
the writer or ledger mutex would stall every appender behind one round
trip, the exact head-of-line blocking the pipeline exists to remove.
Condition-variable waits that pass the guard variable are exempt there
(the wait releases the lock it holds).

A call inside a held region that resolves to a blocking function is an
error. Accepted exceptions (e.g. the Bw-tree's paged-leaf I/O under the
leaf latch, which is the paper's design) live in baseline.json with reasons.
"""

from __future__ import annotations

from . import Finding

BUILTIN_BLOCKING = {"sleep_for", "sleep_until", "wait", "wait_for",
                    "wait_until", "join"}

# Classes whose plain-std::mutex guard regions are checked (DESIGN.md §5.9):
# the pipelined WAL's enqueue mutex, commit ledger, append workers, and the
# commit-waiter primitive. Everything else keeps the bg3-capabilities-only
# scope.
WAL_PIPELINE_CLASSES = {"WalWriter", "AppendPipeline", "CommitSequencer"}

# Condition-variable waits: blocking, but they *release* the lock they are
# given, so a wait naming the region's guard variable is not "blocking
# while holding" that latch.
CV_WAITS = {"wait", "wait_for", "wait_until"}


def _annotated(index, key, macro):
    return macro in index.annotations_for(*key)


def _call_witness(index, call, fn, blocking):
    """Why does this call block? Returns a human string or None."""
    if call.name in BUILTIN_BLOCKING:
        return f"calls {call.name}()"
    cands = index.resolve_callees(call, fn)
    for c in cands:
        if _annotated(index, c.key, "BG3_NO_BLOCKING"):
            return None  # callee asserts it never blocks; trust (and check) it
    for c in cands:
        if c.key in blocking:
            why = blocking[c.key]
            if why == "annotated":
                return f"calls {c.qname}() [BG3_BLOCKING]"
            return f"calls {c.qname}() which {why}"
    return None


def compute_blocking(index):
    """key -> reason, for every function that can block."""
    blocking = {}
    for key in index.by_key:
        if _annotated(index, key, "BG3_BLOCKING"):
            blocking[key] = "annotated"
    changed = True
    while changed:
        changed = False
        for fm in index.models.values():
            for fn in fm.functions:
                if fn.body is None or fn.is_lambda:
                    continue
                if fn.key in blocking:
                    continue
                if _annotated(index, fn.key, "BG3_NO_BLOCKING"):
                    continue  # don't propagate through asserted-nonblocking
                for call in fm.calls(fn):
                    w = _call_witness(index, call, fn, blocking)
                    if w:
                        blocking[fn.key] = w
                        changed = True
                        break
    return blocking


def run(index, config):
    findings = []
    blocking = compute_blocking(index)

    for path, fm in sorted(index.models.items()):
        for fn in fm.functions:
            if fn.body is None or fn.is_lambda:
                continue
            # 1) BG3_NO_BLOCKING functions that can in fact block.
            if _annotated(index, fn.key, "BG3_NO_BLOCKING"):
                for call in fm.calls(fn):
                    w = _call_witness(index, call, fn, blocking)
                    if w:
                        findings.append(Finding(
                            pass_name="latch-discipline", file=path,
                            line=call.line, func=fn.qname,
                            detail=f"no-blocking:{call.name}",
                            message=(f"declared BG3_NO_BLOCKING but {w}")))
            # 2) blocking calls while a bg3 latch is held.
            regions = index.lock_regions(fn)
            if not regions:
                continue
            for call in fm.calls(fn):
                for region in regions:
                    if not (region.start <= call.tok < region.end):
                        continue
                    if region.cap == "std":
                        # std::mutex regions participate only inside the WAL
                        # pipeline classes.
                        if fn.cls not in WAL_PIPELINE_CLASSES:
                            continue
                        # cv.wait(lock, ...) releases the guard's lock.
                        if (call.name in CV_WAITS and region.var
                                and region.var in call.args.split()):
                            continue
                    elif region.site.startswith("?"):
                        continue  # unresolved lock expression: stay quiet
                    w = _call_witness(index, call, fn, blocking)
                    if w is None:
                        continue
                    held = region.site
                    if region.cap == "std" and held.startswith("?"):
                        # std members are not registered mutex sites; name
                        # the region by class and source spelling instead.
                        held = f"{fn.cls}::{region.expr.lstrip('&')}"
                    how = {"guard": "RAII guard",
                           "explicit": "explicit Lock()",
                           "requires": "BG3_REQUIRES precondition"}[region.kind]
                    findings.append(Finding(
                        pass_name="latch-discipline", file=path,
                        line=call.line, func=fn.qname,
                        detail=f"under-lock:{held}->{call.name}",
                        message=(f"{w} while holding {held} ({how} at line "
                                 f"{region.line}); blocking under a latch "
                                 f"serializes every waiter behind the slow "
                                 f"operation")))
                    break  # one finding per call site is enough
    return findings
