"""bg3-lint passes.

Each pass module exposes `run(index, config) -> list[Finding]`. A Finding's
`key` is stable across unrelated edits (no line numbers) so the suppression
baseline (scripts/bg3_lint/baseline.json) survives reformatting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Finding:
    pass_name: str
    file: str       # repo-relative path
    line: int
    func: str       # qualified enclosing function ("" for file-level)
    detail: str     # stable discriminator within (pass, file, func)
    message: str

    @property
    def key(self) -> str:
        return f"{self.pass_name}:{self.file}:{self.func}:{self.detail}"

    def render(self) -> str:
        return (f"{self.file}:{self.line}: [{self.pass_name}] "
                f"{self.func or '<file>'}: {self.message}")


def all_passes():
    from . import (deadline_propagation, latch_discipline, lock_rank,
                   status_discard)
    return {
        "status-discard": status_discard,
        "latch-discipline": latch_discipline,
        "deadline-propagation": deadline_propagation,
        "lock-rank": lock_rank,
    }
