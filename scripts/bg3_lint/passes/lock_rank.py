"""lock-rank: extract the static lock-acquisition-order graph; fail on cycles.

Nodes are bg3::Mutex / bg3::SharedMutex member sites ("Class::member").
There is an edge A -> B when some code path acquires B while holding A:

  - a guard/explicit acquisition of B textually inside a held region of A
    within one function, or
  - a call made while holding A to a function whose transitive acquisition
    set (own RAII/explicit acquisitions plus those of its callees) includes
    B. BG3_REQUIRES regions count as "holding A" for the caller's edges but
    are not acquisitions themselves.

Self-edges (re-acquiring the same site, i.e. latch coupling over the
per-leaf latches) mark a site as dynamically ordered: it is excluded from
ranking and listed as unranked in the generated header, alongside any site
in FORCED_UNRANKED.

The acyclic graph is totally ordered with a deterministic Kahn topological
sort (lexicographic tie-break) and emitted as src/common/lock_rank_gen.h:
one `inline constexpr int kClass_member` per ranked site, strictly
increasing along every static acquisition path. The debug-build runtime
checker (common/lock_rank.{h,cc}) enforces exactly this order on every
acquisition of a SetRank-enrolled mutex. A cycle is a hard lint error —
it is a statically provable deadlock candidate.

EXTRA_EDGES exists for orders the frontend cannot see (callbacks through
std::function, lambdas handed to executors): add the pair here with a
comment instead of weakening the runtime check.
"""

from __future__ import annotations

from . import Finding

# Sites whose acquisition order is inherently dynamic. The per-leaf Bw-tree
# latches are acquired in key order during latch coupling — a property of
# the traversal, not of a static site pair.
FORCED_UNRANKED = {
    suffix: reason for suffix, reason in [
        ("::latch", "per-leaf latch; ordered dynamically by latch coupling"),
    ]
}

# (holder, acquired, why) edges invisible to the text frontend.
EXTRA_EDGES: list[tuple] = [
    # none yet
]


def _site_unranked(site):
    for suffix, reason in FORCED_UNRANKED.items():
        if site.endswith(suffix):
            return reason
    return None


def const_name(site: str) -> str:
    cls, _, member = site.partition("::")
    return f"k{cls}_{member.rstrip('_')}"


def analyze(index):
    """Returns (ranking: {site: rank}, unranked: {site: reason},
    edges: {(a, b): witness}, findings)."""
    findings = []

    # Per-function regions and direct acquisitions.
    fn_regions = []  # (fn, fm, regions)
    own = {}         # fn.key -> set(site)
    for fm in index.models.values():
        for fn in fm.functions:
            if fn.body is None or fn.is_lambda:
                continue
            regions = index.lock_regions(fn)
            regions = [r for r in regions if not r.site.startswith("?")]
            fn_regions.append((fn, fm, regions))
            acq = own.setdefault(fn.key, set())
            for r in regions:
                if r.kind in ("guard", "explicit"):
                    acq.add(r.site)

    # Transitive acquisition closure over the call graph.
    acq = {k: set(v) for k, v in own.items()}
    changed = True
    while changed:
        changed = False
        for fn, fm, _ in fn_regions:
            mine = acq.setdefault(fn.key, set())
            before = len(mine)
            for call in fm.calls(fn):
                for c in index.resolve_callees(call, fn):
                    mine |= acq.get(c.key, set())
            if len(mine) != before:
                changed = True

    # Edges.
    edges = {}
    self_sites = {}
    def add_edge(a, b, witness):
        if a == b:
            self_sites.setdefault(a, witness)
            return
        edges.setdefault((a, b), witness)

    for fn, fm, regions in fn_regions:
        where = f"{fn.file}:{fn.qname}"
        for r in regions:
            for r2 in regions:
                if r2.kind in ("guard", "explicit") and \
                        r.start < r2.start < r.end:
                    add_edge(r.site, r2.site, where)
        if not regions:
            continue
        for call in fm.calls(fn):
            held = [r for r in regions if r.start <= call.tok < r.end]
            if not held:
                continue
            inner = set()
            for c in index.resolve_callees(call, fn):
                inner |= acq.get(c.key, set())
            for r in held:
                for s in inner:
                    add_edge(r.site, s, f"{where} -> {call.name}()")
    for a, b, why in EXTRA_EDGES:
        add_edge(a, b, f"EXTRA_EDGES: {why}")

    # Partition: unranked sites drop out of the graph entirely.
    unranked = {}
    for site in sorted(index.mutex_sites):
        reason = _site_unranked(site)
        if reason:
            unranked[site] = reason
    for site, witness in sorted(self_sites.items()):
        unranked.setdefault(
            site, f"re-acquired while held ({witness}); dynamic order")
    graph_edges = {e: w for e, w in edges.items()
                   if e[0] not in unranked and e[1] not in unranked}

    nodes = sorted({n for e in graph_edges for n in e})
    succ = {n: set() for n in nodes}
    pred = {n: set() for n in nodes}
    for (a, b) in graph_edges:
        succ[a].add(b)
        pred[b].add(a)

    # Cycle detection + deterministic topological ranking (Kahn).
    ranking = {}
    ready = sorted(n for n in nodes if not pred[n])
    indeg = {n: len(pred[n]) for n in nodes}
    order = []
    while ready:
        n = ready.pop(0)
        order.append(n)
        for m in sorted(succ[n]):
            indeg[m] -= 1
            if indeg[m] == 0:
                ready.append(m)
        ready.sort()
    if len(order) != len(nodes):
        cyc = sorted(n for n in nodes if n not in order)
        cyc_edges = [f"{a} -> {b} [{graph_edges[(a, b)]}]"
                     for (a, b) in sorted(graph_edges)
                     if a in cyc and b in cyc]
        findings.append(Finding(
            pass_name="lock-rank", file="src/common/lock_rank_gen.h",
            line=1, func="", detail="cycle:" + ",".join(cyc),
            message=("acquisition-order cycle (statically provable deadlock "
                     "candidate) among {" + ", ".join(cyc) + "}; edges: " +
                     "; ".join(cyc_edges))))
    for i, n in enumerate(order):
        ranking[n] = i + 1
    return ranking, unranked, edges, findings


def emit_header(ranking, unranked, edges) -> str:
    lines = [
        "// GENERATED FILE — do not edit by hand.",
        "//",
        "// Produced by bg3-lint's lock-rank pass:",
        "//   python3 scripts/bg3_lint/run.py --emit-lock-ranks "
        "src/common/lock_rank_gen.h",
        "//",
        "// One constant per ranked mutex site (Class::member), topologically",
        "// ordered by the statically extracted acquisition graph: if any code",
        "// path acquires B while holding A, then rank(A) < rank(B). The CI",
        "// lint job regenerates this header and fails on a diff. Consumed by",
        "// common/lock_rank.h (runtime checker) via the SetRank calls in each",
        "// owning class's constructor.",
        "//",
        "// Acquisition edges (holder -> acquired  [witness]):",
    ]
    for (a, b), w in sorted(edges.items()):
        lines.append(f"//   {a} -> {b}  [{w}]")
    lines += [
        "",
        "#ifndef BG3_COMMON_LOCK_RANK_GEN_H_",
        "#define BG3_COMMON_LOCK_RANK_GEN_H_",
        "",
        "namespace bg3::lock_rank {",
        "",
    ]
    for site, rank in sorted(ranking.items(), key=lambda kv: kv[1]):
        lines.append(f"inline constexpr int {const_name(site)} = {rank};"
                     f"  // {site}")
    if unranked:
        lines += ["", "// Unranked (dynamic order; stay kUnranked):"]
        for site, reason in sorted(unranked.items()):
            lines.append(f"//   {site}: {reason}")
    lines += [
        "",
        "}  // namespace bg3::lock_rank",
        "",
        "#endif  // BG3_COMMON_LOCK_RANK_GEN_H_",
        "",
    ]
    return "\n".join(lines)


def run(index, config):
    ranking, unranked, edges, findings = analyze(index)
    config.setdefault("lock_rank", {})
    config["lock_rank"].update(
        {"ranking": ranking, "unranked": unranked, "edges": edges})
    return findings
