"""deadline-propagation: an OpContext, once accepted, must be forwarded.

The overload-protection layer (DESIGN.md §5.5) threads an OpContext* —
deadline plus shared clock — down every request path; CheckDeadline() gates
each expensive step. A function that accepts an OpContext but calls an
OpContext-accepting callee without passing it punches a hole in that chain:
the subtree below the call runs with no deadline and cannot be shed under
overload.

Rule: for each function with an `OpContext*` parameter, every call that
resolves to a function which itself accepts an OpContext must mention the
context parameter in its argument list. Passing an explicit `nullptr` is
treated as a visible, reviewable opt-out (detached/background work) and is
not flagged; silently omitting a defaulted `ctx = nullptr` parameter — the
actual bug class — is.
"""

from __future__ import annotations

import re

from . import Finding

CTX_PARAM = re.compile(r"\bOpContext\s*\*\s*(?:const\s+)?(\w+)")


def _ctx_param_name(fn):
    m = CTX_PARAM.search(fn.params)
    return m.group(1) if m else None


def _accepts_ctx(cands):
    return any("OpContext" in c.params for c in cands)


def run(index, config):
    findings = []
    for path, fm in sorted(index.models.items()):
        for fn in fm.functions:
            if fn.body is None or fn.is_lambda:
                continue
            ctx = _ctx_param_name(fn)
            if ctx is None:
                continue
            for call in fm.calls(fn):
                cands = index.resolve_callees(call, fn)
                if not cands or not _accepts_ctx(cands):
                    continue
                if re.search(rf"\b{re.escape(ctx)}\b", call.args):
                    continue  # forwarded
                if re.search(r"\bnullptr\b", call.args):
                    continue  # explicit, reviewable opt-out
                callee = cands[0].qname
                findings.append(Finding(
                    pass_name="deadline-propagation", file=path,
                    line=call.line, func=fn.qname,
                    detail=f"dropped-ctx:{call.name}",
                    message=(f"calls {callee}() without forwarding "
                             f"OpContext* {ctx}; the callee runs with no "
                             f"deadline (pass {ctx}, or an explicit nullptr "
                             f"to opt out visibly)")))
    return findings
