"""status-discard: flag silently dropped bg3::Status / bg3::Result values.

The compiler already enforces the easy 90% through the class-level
BG3_NODISCARD on Status/Result (-Wunused-result, promoted by BG3_WERROR in
CI). This pass covers what [[nodiscard]] cannot:

  - `(void)Foo();` and `static_cast<void>(Foo());` casts, which silence the
    compiler warning without leaving an audit trail. The sanctioned sink is
    BG3_IGNORE_STATUS(expr) (common/status.h), which this pass treats as the
    only legitimate discard.
  - plain expression statements whose outermost call returns Status/Result,
    independent of whether the translation unit was compiled with warnings
    enabled (e.g. generated code, tools/ one-offs outside the CMake build).

Only the *outermost* call of a statement is considered: a Status nested in
BG3_CHECK(db.Put(...).ok()) is consumed by the enclosing expression.
Unresolvable callees (macros, std:: functions) are never flagged — the pass
prefers false negatives over noise; the compiler backstop catches the rest.
"""

from __future__ import annotations

from . import Finding

# Macros that deliberately consume or forward a Status-valued argument.
SINK_MACROS = {
    "BG3_IGNORE_STATUS",
}

CONTROL = {"if", "else", "for", "while", "do", "switch", "return", "case",
           "break", "continue", "goto", "throw", "co_return", "delete",
           "new", "try", "catch", "default", "using", "typedef", "template"}


def _returns_status(cands):
    saw_status = False
    for f in cands:
        ret = " ".join(f.ret)
        if "Status" in ret or "Result" in ret:
            saw_status = True
        elif "void" in ret.split():
            return False  # ambiguous overload set; stay quiet
    return saw_status


def _outermost_call(fm, stmt):
    """If stmt is exactly `[chain] name(args)`, returns (name, recv, args,
    name_tok_idx); else None."""
    n = len(stmt)
    i = 0
    recv = []
    while i < n:
        idx, t = stmt[i]
        if t.kind != "id" or t.text in CONTROL:
            return None
        if i + 1 < n and stmt[i + 1][1].text == "(":
            open_idx = stmt[i + 1][0]
            close = fm.close_of(open_idx)
            if close != stmt[-1][0]:
                return None  # trailing tokens: .ok(), operators, etc.
            args = " ".join(tok.text for tok in
                            fm.toks[open_idx + 1:close])
            return (t.text, recv, args, idx)
        if i + 1 < n and stmt[i + 1][1].text in (".", "->", "::"):
            recv.append(t.text)
            i += 2
            continue
        return None
    return None


def _strip_void_cast(stmt):
    """Removes a leading (void) / static_cast<void>( ... ) wrapper; returns
    (stripped_stmt, had_cast)."""
    texts = [t.text for _, t in stmt]
    if texts[:3] == ["(", "void", ")"]:
        return stmt[3:], True
    if texts[:5] == ["static_cast", "<", "void", ">", "("] and \
            texts[-1] == ")":
        return stmt[5:-1], True
    return stmt, False


def run(index, config):
    findings = []
    for path, fm in sorted(index.models.items()):
        for fn in fm.functions:
            if fn.body is None:
                continue
            for stmt in fm.statements(fn):
                if not stmt:
                    continue
                first = stmt[0][1]
                if first.kind == "id" and first.text in CONTROL:
                    continue
                body, had_cast = _strip_void_cast(stmt)
                if not body:
                    continue
                call = _outermost_call(fm, body)
                if call is None:
                    continue
                name, recv, args, name_idx = call
                if name in SINK_MACROS:
                    continue
                from ..model import CallSite
                cs = CallSite(name=name, recv=recv, args=args,
                              line=fm.toks[name_idx].line, tok=name_idx)
                cands = index.resolve_callees(cs, fn)
                if not cands or not _returns_status(cands):
                    continue
                callee = cands[0].qname
                if had_cast:
                    msg = (f"Status/Result from {callee}() silenced with a "
                           f"void cast; use BG3_IGNORE_STATUS(...) so the "
                           f"discard is auditable")
                    detail = f"void-cast:{name}"
                else:
                    msg = (f"discarded Status/Result returned by {callee}(); "
                           f"handle it, BG3_RETURN_IF_ERROR it, or wrap in "
                           f"BG3_IGNORE_STATUS(...)")
                    detail = f"discard:{name}"
                findings.append(Finding(
                    pass_name="status-discard", file=path,
                    line=fm.toks[name_idx].line, func=fn.qname,
                    detail=detail, message=msg))
    return findings
