"""Shared C++ source model for bg3-lint.

A deliberately lightweight frontend: a comment/string-aware tokenizer plus a
structural parser that recovers exactly what the four passes need from this
codebase's (Google-style, macro-annotated) C++ — namespaces, classes,
function declarations/definitions with their annotation macros, member
variables, call sites, RAII lock-guard scopes, and explicit Lock()/Unlock()
pairs. It is not a general C++ parser; it leans on the project's idiom
(one statement per declaration, annotation macros spelled literally,
bg3::Mutex / bg3::SharedMutex wrappers for every latch). The fixture suite
under scripts/bg3_lint/tests/ pins its behavior per pass.

Known, documented blind spots (see DESIGN.md §5.6):
  - lambda bodies are indexed as separate synthetic functions; calls inside
    a lambda are *not* attributed to the enclosing function, because most
    lambdas here are deferred work (thread-pool tasks, retry ops). Blocking
    executors (RetryWithBackoff, ThreadPool::Submit) are themselves
    BG3_BLOCKING, so the discipline still holds at the dispatch site.
  - calls through function pointers / std::function are invisible.
  - templates are analyzed textually, once, not per instantiation.
"""

from __future__ import annotations

import bisect
import os
import re
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

PUNCT3 = ("<<=", ">>=", "...", "->*")
PUNCT2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
          "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##")

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default", "break",
    "continue", "return", "goto", "try", "catch", "throw", "new", "delete",
    "sizeof", "alignof", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "co_await", "co_return", "co_yield",
}

# Specifier-ish tokens that may precede a return type or member type.
SPECIFIERS = {
    "virtual", "static", "inline", "constexpr", "consteval", "constinit",
    "explicit", "friend", "mutable", "extern", "typename", "using",
    "BG3_NODISCARD", "BG3_BLOCKING", "BG3_NO_BLOCKING",
}


@dataclass
class Token:
    kind: str  # "id" | "num" | "str" | "chr" | "p" (punctuation)
    text: str
    line: int

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"{self.text}@{self.line}"


def tokenize(src: str):
    """Tokenizes C++ source, dropping comments and preprocessor directives."""
    toks = []
    i, n, line = 0, len(src), 1
    at_line_start = True
    while i < n:
        c = src[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and at_line_start:
            # Preprocessor directive: skip the logical line (with \-splices).
            while i < n:
                if src[i] == "\n":
                    if src[i - 1] == "\\":
                        line += 1
                        i += 1
                        continue
                    break
                i += 1
            continue
        at_line_start = False
        if c == "/" and i + 1 < n:
            if src[i + 1] == "/":
                while i < n and src[i] != "\n":
                    i += 1
                continue
            if src[i + 1] == "*":
                end = src.find("*/", i + 2)
                if end == -1:
                    end = n
                line += src.count("\n", i, end)
                i = end + 2
                continue
        if c == '"' or (c == "R" and src[i:i + 2] == 'R"'):
            if c == "R":
                # Raw string: R"delim( ... )delim"
                m = re.match(r'R"([^(\s]*)\(', src[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    end = src.find(close, i + m.end())
                    if end == -1:
                        end = n
                    else:
                        end += len(close)
                    line += src.count("\n", i, end)
                    toks.append(Token("str", src[i:end], line))
                    i = end
                    continue
            j = i + 1
            while j < n and src[j] != '"':
                if src[j] == "\\":
                    j += 1
                j += 1
            toks.append(Token("str", src[i:j + 1], line))
            line += src.count("\n", i, j)
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and src[j] != "'":
                if src[j] == "\\":
                    j += 1
                j += 1
            toks.append(Token("chr", src[i:j + 1], line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            toks.append(Token("id", src[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and src[i + 1].isdigit()):
            j = i
            while j < n and (src[j].isalnum() or src[j] in "._'"
                             or (src[j] in "+-" and src[j - 1] in "eEpP")):
                j += 1
            toks.append(Token("num", src[i:j], line))
            i = j
            continue
        for p in PUNCT3:
            if src.startswith(p, i):
                toks.append(Token("p", p, line))
                i += 3
                break
        else:
            for p in PUNCT2:
                if src.startswith(p, i):
                    toks.append(Token("p", p, line))
                    i += 2
                    break
            else:
                toks.append(Token("p", c, line))
                i += 1
    return toks


# ---------------------------------------------------------------------------
# Index entities
# ---------------------------------------------------------------------------


@dataclass
class Function:
    """A function declaration or definition (methods included)."""
    name: str                  # unqualified
    cls: str | None            # enclosing (or qualifying) class, if any
    ns: str                    # enclosing namespace path ("bg3::cloud")
    file: str
    line: int
    ret: list[str] = field(default_factory=list)     # return-type tokens
    params: str = ""                                 # raw parameter text
    annotations: dict = field(default_factory=dict)  # macro -> arg text
    body: tuple | None = None  # (start, end) token idxs into its file, or None
    is_lambda: bool = False

    @property
    def qname(self) -> str:
        parts = [p for p in (self.ns, self.cls, self.name) if p]
        return "::".join(parts)

    @property
    def key(self):
        return (self.cls, self.name)


@dataclass
class MutexMember:
    cls: str            # owning class (innermost)
    name: str           # member name
    mtype: str          # "Mutex" | "SharedMutex"
    file: str
    line: int

    @property
    def site(self) -> str:
        return f"{self.cls}::{self.name}"


@dataclass
class CallSite:
    name: str            # callee name (last identifier)
    recv: list[str]      # receiver chain, e.g. ["store_"] for store_->Append
    args: str            # raw argument text (top-level of the call parens)
    line: int
    tok: int             # index of the callee-name token in the file stream


@dataclass
class LockRegion:
    """Token range [start, end) of a function body where `site` is held."""
    site: str            # resolved "Class::member" or "?<expr>"
    expr: str            # source spelling of the lock expression
    start: int
    end: int
    line: int
    kind: str            # "guard" | "explicit" | "requires"
    cap: str = "bg3"     # "bg3" (annotated Mutex/SharedMutex) | "std"
    var: str = ""        # guard variable name (RAII guards only)


ANNOTATION_MACROS = {
    "BG3_BLOCKING", "BG3_NO_BLOCKING", "BG3_REQUIRES", "BG3_REQUIRES_SHARED",
    "BG3_ACQUIRE", "BG3_ACQUIRE_SHARED", "BG3_RELEASE", "BG3_RELEASE_SHARED",
    "BG3_TRY_ACQUIRE", "BG3_TRY_ACQUIRE_SHARED", "BG3_EXCLUDES",
    "BG3_ASSERT_CAPABILITY", "BG3_ASSERT_SHARED_CAPABILITY",
    "BG3_RETURN_CAPABILITY", "BG3_NO_THREAD_SAFETY_ANALYSIS",
    "BG3_NODISCARD", "BG3_GUARDED_BY", "BG3_PT_GUARDED_BY",
    "BG3_ACQUIRED_BEFORE", "BG3_ACQUIRED_AFTER", "BG3_CAPABILITY",
    "BG3_SCOPED_CAPABILITY", "override", "final", "noexcept", "const",
}

BG3_GUARDS = {"MutexLock": "Mutex",
              "WriterMutexLock": "SharedMutex",
              "ReaderMutexLock": "SharedMutex"}
STD_GUARDS = {"lock_guard", "unique_lock", "shared_lock", "scoped_lock"}
BG3_MUTEX_TYPES = {"Mutex", "SharedMutex"}


class FileModel:
    """Tokenized + structurally indexed view of one source file."""

    def __init__(self, path: str, text: str | None = None):
        self.path = path
        if text is None:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        self.text = text
        self.toks = tokenize(text)
        self.functions: list[Function] = []
        self.mutex_members: list[MutexMember] = []
        self.member_types: dict = {}   # (cls, member) -> type string
        self._match = self._match_brackets()
        self._parse_structure()

    # -- bracket matching ---------------------------------------------------

    def _match_brackets(self):
        """idx of every ( { [ -> idx of its matching closer (token index)."""
        match = {}
        stack = []
        pairs = {"(": ")", "{": "}", "[": "]"}
        closers = {")": "(", "}": "{", "]": "["}
        for i, t in enumerate(self.toks):
            if t.kind != "p":
                continue
            if t.text in pairs:
                stack.append((t.text, i))
            elif t.text in closers:
                # Pop until the matching opener kind (tolerates template <>
                # noise since we do not track angle brackets here).
                while stack:
                    kind, j = stack.pop()
                    if kind == closers[t.text]:
                        match[j] = i
                        break
        return match

    def close_of(self, i: int) -> int:
        """Matching closer for the opener at token i (end of file if unmatched)."""
        return self._match.get(i, len(self.toks) - 1)

    # -- structural parse ---------------------------------------------------

    def _parse_structure(self):
        toks = self.toks
        i = 0
        # Scope stack entries: (kind, name, close_idx). kind: ns|class|skip
        scopes = []
        stmt_start = 0  # first token of the pending declaration

        def ns_path():
            return "::".join(s[1] for s in scopes if s[0] == "ns" and s[1])

        def cur_class():
            for s in reversed(scopes):
                if s[0] == "class":
                    return s[1]
            return None

        n = len(toks)
        while i < n:
            # Pop finished scopes.
            while scopes and i >= scopes[-1][2]:
                scopes.pop()
            t = toks[i]
            if t.kind == "p" and t.text == "{":
                close = self.close_of(i)
                pend = toks[stmt_start:i]
                kind, name = self._classify_brace(pend)
                if kind == "fn":
                    fn = self._make_function(pend, ns_path(), cur_class())
                    if fn is not None:
                        fn.body = (i + 1, close)
                        self.functions.append(fn)
                        self._index_lambdas(fn)
                    i = close + 1
                    stmt_start = i
                    continue
                if kind in ("ns", "class"):
                    scopes.append((kind, name, close))
                    i += 1
                    stmt_start = i
                    continue
                # Anything else: skip the whole brace group.
                i = close + 1
                stmt_start = i
                continue
            if t.kind == "p" and t.text == ";":
                pend = toks[stmt_start:i]
                self._handle_declaration(pend, ns_path(), cur_class())
                i += 1
                stmt_start = i
                continue
            if t.kind == "p" and t.text == "}":
                i += 1
                stmt_start = i
                continue
            if (t.kind == "id" and t.text in ("public", "private", "protected")
                    and i + 1 < n and toks[i + 1].text == ":"):
                i += 2
                stmt_start = i
                continue
            i += 1

    def _classify_brace(self, pend: list[Token]):
        """What does a `{` following tokens `pend` open?"""
        texts = [t.text for t in pend]
        if not texts:
            return ("skip", None)
        if "namespace" in texts:
            k = texts.index("namespace")
            name = []
            for t in texts[k + 1:]:
                if t == "::" or re.match(r"^\w+$", t):
                    name.append(t)
                else:
                    break
            return ("ns", "".join(name))
        if "enum" in texts:
            return ("skip", None)
        if "=" in texts and "(" not in texts[:texts.index("=")]:
            return ("skip", None)  # brace initializer
        if ("class" in texts or "struct" in texts or "union" in texts):
            # Distinguish a type definition from e.g. a function returning a
            # struct: type defs have no parameter list before the brace
            # except attribute macros right after the keyword.
            k = texts.index("class") if "class" in texts else (
                texts.index("struct") if "struct" in texts
                else texts.index("union"))
            name = self._class_name(pend[k + 1:])
            if name is not None:
                return ("class", name)
        # Function definition: ident followed by a top-level (...) group,
        # with only qualifiers / ctor-init material after it.
        if self._looks_like_function(pend):
            return ("fn", None)
        return ("skip", None)

    def _class_name(self, toks_after_kw: list[Token]):
        """Class name: first plain identifier not consumed by an attribute."""
        i = 0
        name = None
        while i < len(toks_after_kw):
            t = toks_after_kw[i]
            if t.kind == "id":
                if t.text in ("final", "alignas"):
                    i += 1
                    continue
                # Attribute macro (BG3_CAPABILITY("x")): ident + (...) group.
                if (t.text in ANNOTATION_MACROS
                        and i + 1 < len(toks_after_kw)
                        and toks_after_kw[i + 1].text == "("):
                    depth = 0
                    i += 1
                    while i < len(toks_after_kw):
                        if toks_after_kw[i].text == "(":
                            depth += 1
                        elif toks_after_kw[i].text == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        i += 1
                    i += 1
                    continue
                name = t.text
                break
            if t.text in (":", "{"):
                break
            i += 1
        return name

    def _looks_like_function(self, pend: list[Token]) -> bool:
        depth = 0
        saw_params = False
        for j, t in enumerate(pend):
            if t.text == "(":
                if depth == 0 and j > 0 and pend[j - 1].kind == "id" \
                        and pend[j - 1].text not in KEYWORDS:
                    saw_params = True
                depth += 1
            elif t.text == ")":
                depth -= 1
        if not saw_params:
            return False
        if pend and pend[0].text in ("if", "for", "while", "switch", "catch"):
            return False
        return True

    # -- declarations / definitions -----------------------------------------

    def _make_function(self, pend: list[Token], ns: str, cls: str | None):
        """Builds a Function from the tokens preceding a definition's `{`."""
        # Find the parameter list: the last top-level "ident (" group that is
        # not an annotation macro and not part of the ctor-init list.
        groups = []  # (name_idx, open_idx)
        depth = 0
        colon_at = None
        for j, t in enumerate(pend):
            if t.text == "(":
                if depth == 0 and j > 0 and pend[j - 1].kind == "id":
                    groups.append((j - 1, j))
                depth += 1
            elif t.text == ")":
                depth -= 1
            elif t.text == ":" and depth == 0 and colon_at is None:
                prev = pend[j - 1].text if j else ""
                nxt = pend[j + 1].text if j + 1 < len(pend) else ""
                if prev != ":" and nxt != ":":  # not part of "::"
                    colon_at = j
        # Parameter group = last candidate group before the ctor-init colon
        # whose name is not an annotation macro.
        # Tokens that look like `name(` but never are the function name:
        # trailing-return-type machinery, operators, specifiers.
        non_names = {"decltype", "noexcept", "sizeof", "alignof", "requires",
                     "alignas", "throw"} | KEYWORDS
        arrow_at = None
        depth = 0
        for j, t in enumerate(pend):
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
            elif t.text == "->" and depth == 0 and arrow_at is None:
                arrow_at = j
        cand = None
        for name_idx, open_idx in groups:
            if colon_at is not None and open_idx > colon_at:
                continue
            if arrow_at is not None and open_idx > arrow_at:
                continue  # part of a trailing return type
            if pend[name_idx].text in ANNOTATION_MACROS:
                continue
            if pend[name_idx].text in non_names:
                continue
            cand = (name_idx, open_idx)
        if cand is None:
            return None
        name_idx, open_idx = cand
        name = pend[name_idx].text
        # Receiver qualification: Class::Name in out-of-line definitions.
        qual_cls = cls
        k = name_idx - 1
        quals = []
        while k >= 1 and pend[k].text == "::" and pend[k - 1].kind == "id":
            quals.append(pend[k - 1].text)
            k -= 2
        if quals:
            qual_cls = quals[0]  # innermost qualifier is the class
            if qual_cls and qual_cls[0].islower() and "_" not in qual_cls:
                # Heuristic: lowercase qualifiers are namespaces (bg3::wal).
                qual_cls = cls
        # Destructor "~Class" -> skip the tilde name mangling, keep as-is.
        if k >= 0 and pend[k].text == "~":
            name = "~" + name
        # Parameter text.
        close = None
        depth = 0
        for j in range(open_idx, len(pend)):
            if pend[j].text == "(":
                depth += 1
            elif pend[j].text == ")":
                depth -= 1
                if depth == 0:
                    close = j
                    break
        params = " ".join(t.text for t in pend[open_idx + 1:close]) \
            if close else ""
        # Return type tokens: everything before the (qualified) name, minus
        # specifiers and template intro.
        ret = []
        j = 0
        limit = k + 1 if quals or name.startswith("~") else name_idx
        while j < limit:
            t = pend[j]
            if t.text == "template":
                # skip template<...>
                depth_ab = 0
                j += 1
                while j < limit:
                    if pend[j].text == "<":
                        depth_ab += 1
                    elif pend[j].text == ">":
                        depth_ab -= 1
                        if depth_ab == 0:
                            break
                    j += 1
                j += 1
                continue
            if t.kind == "id" and t.text in SPECIFIERS:
                j += 1
                continue
            ret.append(t.text)
            j += 1
        ann = self._annotations(pend, close if close is not None else 0)
        for t in pend[:name_idx]:
            if t.kind == "id" and t.text in ("BG3_BLOCKING", "BG3_NO_BLOCKING",
                                             "BG3_NODISCARD"):
                ann.setdefault(t.text, "")
        line = pend[name_idx].line
        return Function(name=name, cls=qual_cls, ns=ns, file=self.path,
                        line=line, ret=ret, params=params, annotations=ann)

    def _annotations(self, pend: list[Token], after: int):
        """Annotation macros appearing after token index `after`."""
        ann = {}
        j = after
        while j < len(pend):
            t = pend[j]
            if t.kind == "id" and (t.text.startswith("BG3_")
                                   or t.text in ("const", "noexcept",
                                                 "override", "final")):
                arg = ""
                if j + 1 < len(pend) and pend[j + 1].text == "(":
                    depth = 0
                    kk = j + 1
                    start = kk + 1
                    while kk < len(pend):
                        if pend[kk].text == "(":
                            depth += 1
                        elif pend[kk].text == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        kk += 1
                    arg = " ".join(x.text for x in pend[start:kk])
                    j = kk
                ann[t.text] = arg
            j += 1
        return ann

    def _handle_declaration(self, pend: list[Token], ns: str,
                            cls: str | None):
        if not pend:
            return
        texts = [t.text for t in pend]
        if texts[0] in ("using", "typedef", "friend", "template") \
                and "(" not in texts:
            return
        # Method / function declaration (has a parameter group).
        if self._looks_like_function(pend) and "=" not in self._top_level(
                pend, stop_at_paren=True):
            fn = self._make_function(pend, ns, cls)
            if fn is not None:
                self.functions.append(fn)
                return
        if "=" in texts and texts.index("=") < len(texts) and \
                self._looks_like_function(pend):
            # "= default" / "= delete" / "= 0" declarations still carry
            # annotations worth indexing.
            fn = self._make_function(pend, ns, cls)
            if fn is not None:
                self.functions.append(fn)
                return
        if cls is None:
            return
        # Member variable: [mutable] Type name [init].
        idx = 0
        while idx < len(texts) and texts[idx] in SPECIFIERS:
            idx += 1
        rest = pend[idx:]
        if len(rest) >= 2 and rest[0].kind == "id":
            type_toks = []
            j = 0
            while j < len(rest):
                t = rest[j]
                if t.kind == "id" or t.text in ("::", "<", ">", ",", "*", "&"):
                    type_toks.append(t.text)
                    j += 1
                else:
                    break
            # name = last identifier in the collected run
            idents = [x for x in type_toks if re.match(r"^\w+$", x)]
            if len(idents) >= 2:
                name = idents[-1]
                type_str = " ".join(type_toks[:len(type_toks) - 1 -
                                              type_toks[::-1].index(name)]) \
                    if name in type_toks else ""
                self.member_types[(cls, name)] = type_str
                base = [x for x in idents[:-1]]
                if base and base[-1] in BG3_MUTEX_TYPES and \
                        (len(base) == 1 or base[-2] in ("bg3",)):
                    self.mutex_members.append(MutexMember(
                        cls=cls, name=name, mtype=base[-1],
                        file=self.path, line=rest[0].line))

    def _top_level(self, pend: list[Token], stop_at_paren=False):
        out = []
        depth = 0
        for t in pend:
            if t.text in "([{":
                depth += 1
                if stop_at_paren and t.text == "(" and depth == 1:
                    break
                continue
            if t.text in ")]}":
                depth -= 1
                continue
            if depth == 0:
                out.append(t.text)
        return out

    # -- lambdas -------------------------------------------------------------

    def _index_lambdas(self, fn: Function):
        """Registers lambda bodies inside fn as synthetic child functions."""
        start, end = fn.body
        toks = self.toks
        i = start
        while i < end:
            t = toks[i]
            if t.kind == "p" and t.text == "[":
                prev = toks[i - 1] if i > 0 else None
                is_subscript = prev is not None and (
                    prev.kind in ("id", "num")
                    and prev.text not in KEYWORDS
                    or prev.text in (")", "]"))
                close_b = self.close_of(i)
                if not is_subscript and close_b < end:
                    j = close_b + 1
                    # optional (params) group, optional specifiers
                    if j < end and toks[j].text == "(":
                        j = self.close_of(j) + 1
                    while j < end and toks[j].kind == "id" and \
                            toks[j].text in ("mutable", "noexcept", "constexpr"):
                        j += 1
                    if j < end and toks[j].text == "->":
                        while j < end and toks[j].text != "{":
                            j += 1
                    if j < end and toks[j].text == "{":
                        body_close = self.close_of(j)
                        lam = Function(
                            name=f"<lambda@{t.line}>", cls=fn.cls, ns=fn.ns,
                            file=self.path, line=t.line, is_lambda=True)
                        lam.body = (j + 1, body_close)
                        self.functions.append(lam)
                        self._index_lambdas(lam)
                        i = body_close + 1
                        continue
            i += 1

    # -- body helpers --------------------------------------------------------

    def direct_ranges(self, fn: Function):
        """Body token ranges excluding nested lambda bodies."""
        start, end = fn.body
        holes = sorted(
            (f.body[0] - 1, f.body[1] + 1) for f in self.functions
            if f.is_lambda and f.body and start < f.body[0] < end
            # only directly nested (not lambdas inside lambdas)
        )
        merged = []
        for h in holes:
            if merged and h[0] <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], h[1]))
            else:
                merged.append(h)
        ranges = []
        cur = start
        for h0, h1 in merged:
            if h0 > cur:
                ranges.append((cur, h0))
            cur = max(cur, h1)
        if cur < end:
            ranges.append((cur, end))
        return ranges

    def statements(self, fn: Function):
        """Top-level-ish statements: token slices split on ; { } outside
        parens, lambda bodies excluded."""
        out = []
        for r0, r1 in self.direct_ranges(fn):
            i = r0
            stmt = []
            depth = 0
            while i < r1:
                t = self.toks[i]
                if t.text == "(" or t.text == "[":
                    depth += 1
                elif t.text == ")" or t.text == "]":
                    depth -= 1
                if t.kind == "p" and depth <= 0 and t.text in (";", "{", "}"):
                    if stmt:
                        out.append(stmt)
                    stmt = []
                    if depth < 0:
                        depth = 0
                else:
                    stmt.append((i, t))
                i += 1
            if stmt:
                out.append(stmt)
        return out

    def calls(self, fn: Function):
        """Call sites in fn's body (lambda bodies excluded)."""
        out = []
        toks = self.toks
        for r0, r1 in self.direct_ranges(fn):
            for i in range(r0, r1):
                t = toks[i]
                if t.kind != "id" or t.text in KEYWORDS:
                    continue
                j = i + 1
                # allow one template-argument group: Foo<Bar>(x)
                if j < r1 and toks[j].text == "<":
                    depth = 1
                    k = j + 1
                    while k < r1 and depth > 0 and k - j < 24:
                        if toks[k].text == "<":
                            depth += 1
                        elif toks[k].text == ">":
                            depth -= 1
                        k += 1
                    if depth == 0 and k < r1 and toks[k].text == "(":
                        j = k
                if not (j < r1 and toks[j].text == "("):
                    continue
                # receiver chain: a->b.c::d ending just before i
                recv = []
                k = i - 1
                while k >= r0 and toks[k].kind == "p" and \
                        toks[k].text in ("->", ".", "::"):
                    if k - 1 >= r0 and toks[k - 1].kind == "id":
                        recv.append(toks[k - 1].text)
                        k -= 2
                    elif k - 1 >= r0 and toks[k - 1].text == ")":
                        recv.append("<call>")
                        break
                    else:
                        break
                recv.reverse()
                close = self.close_of(j)
                args = " ".join(x.text for x in toks[j + 1:close])
                out.append(CallSite(name=t.text, recv=recv, args=args,
                                    line=t.line, tok=i))
        return out

    # -- lock regions --------------------------------------------------------

    def scope_end(self, tok_idx: int, fn: Function) -> int:
        """End (token idx) of the innermost brace scope containing tok_idx."""
        start, end = fn.body
        best = end
        for i, close in self._match.items():
            if self.toks[i].text != "{":
                continue
            if start <= i < tok_idx <= close <= end and close < best:
                best = close
        return best

    def lock_regions(self, fn: Function, resolve):
        """Regions of fn's body during which a bg3 mutex is held.

        `resolve(expr_chain, fn)` maps a lock-expression chain (list of
        identifiers, e.g. ["leaf", "latch"]) to a site string.
        """
        regions = []
        toks = self.toks
        # BG3_REQUIRES / BG3_ACQUIRE style: whole body held.
        for macro in ("BG3_REQUIRES", "BG3_REQUIRES_SHARED"):
            if macro in fn.annotations:
                for arg in fn.annotations[macro].split(","):
                    arg = arg.strip()
                    if not arg:
                        continue
                    chain = [p for p in re.split(r"->|\.|::|\s+", arg) if p]
                    site = resolve(chain, fn)
                    regions.append(LockRegion(
                        site=site, expr=arg, start=fn.body[0],
                        end=fn.body[1], line=fn.line, kind="requires"))
        for stmt in self.statements(fn):
            texts = [t.text for _, t in stmt]
            if not texts:
                continue
            # RAII guards.
            g = self._guard_in(stmt)
            if g is not None:
                varname, expr_chain, expr_text, idx0, cap = g
                site = resolve(expr_chain, fn)
                end = self.scope_end(idx0, fn)
                # Early release via var.unlock()/var.Unlock().
                end = min(end, self._early_release(varname, idx0, fn))
                regions.append(LockRegion(
                    site=site, expr=expr_text, start=stmt[-1][0] + 1,
                    end=end, line=stmt[0][1].line, kind="guard",
                    cap=cap, var=varname))
                continue
            # Explicit chain.Lock() / .lock() / .ReaderLock() / .lock_shared().
            m = self._explicit_lock(stmt)
            if m is not None:
                chain, expr_text = m
                site = resolve(chain, fn)
                end = self._explicit_unlock(chain, stmt[-1][0], fn)
                regions.append(LockRegion(
                    site=site, expr=expr_text, start=stmt[-1][0] + 1,
                    end=end, line=stmt[0][1].line, kind="explicit"))
        return regions

    def _guard_in(self, stmt):
        """Detects `MutexLock l(&mu_)` / `std::unique_lock<SharedMutex> l(x)`
        and std guards over plain std::mutex (cap "std" — the WAL pipeline's
        internal latches, which the latch-discipline pass scopes by class).

        Returns (varname, lock_expr_chain, expr_text, first_tok_idx, cap)
        or None.
        """
        texts = [t.text for _, t in stmt]
        cap = "bg3"
        i = 0
        if texts[:2] == ["std", "::"]:
            i = 2
        if i >= len(texts):
            return None
        head = texts[i]
        if head in BG3_GUARDS:
            i += 1
        elif head in STD_GUARDS:
            # a bg3 Mutex/SharedMutex template argument, or plain std::mutex
            # (tagged cap "std" so passes can opt in selectively)
            if i + 1 >= len(texts) or texts[i + 1] != "<":
                return None
            j = i + 2
            targ = []
            depth = 1
            while j < len(texts) and depth > 0:
                if texts[j] == "<":
                    depth += 1
                elif texts[j] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                targ.append(texts[j])
                j += 1
            if any(t in BG3_MUTEX_TYPES for t in targ):
                cap = "bg3"
            elif "mutex" in targ:
                cap = "std"
            else:
                return None
            i = j + 1
        else:
            return None
        if i >= len(texts) or not re.match(r"^\w+$", texts[i]):
            return None
        varname = texts[i]
        if i + 1 >= len(texts) or texts[i + 1] not in ("(", "{"):
            return None
        arg = texts[i + 2:]
        # first argument only
        depth = 0
        first = []
        for t in arg:
            if t in "([{":
                depth += 1
            elif t in ")]}":
                if depth == 0:
                    break
                depth -= 1
            elif t == "," and depth == 0:
                break
            first.append(t)
        chain = [p for p in first if re.match(r"^\w+$", p) and p != "this"]
        expr_text = "".join(first)
        return (varname, chain, expr_text, stmt[0][0], cap)

    def _early_release(self, varname, after_idx, fn):
        toks = self.toks
        for i in range(after_idx, fn.body[1]):
            if (toks[i].kind == "id" and toks[i].text == varname
                    and i + 2 < fn.body[1] and toks[i + 1].text == "."
                    and toks[i + 2].text in ("unlock", "Unlock")):
                return i
        return fn.body[1]

    def _explicit_lock(self, stmt):
        texts = [t.text for _, t in stmt]
        lock_names = {"Lock", "lock", "ReaderLock", "lock_shared"}
        for j, t in enumerate(texts):
            if t in lock_names and j + 1 < len(texts) and \
                    texts[j + 1] == "(" and j >= 2 and \
                    texts[j - 1] in (".", "->"):
                chain = []
                k = j - 1
                while k >= 1 and texts[k] in (".", "->", "::"):
                    if re.match(r"^\w+$", texts[k - 1]):
                        chain.append(texts[k - 1])
                        k -= 2
                    else:
                        break
                chain.reverse()
                if chain:
                    return (chain, "".join(texts[:j + 1]))
        return None

    def _explicit_unlock(self, chain, after_idx, fn):
        toks = self.toks
        unlock_names = {"Unlock", "unlock", "ReaderUnlock", "unlock_shared"}
        want = chain[-1]
        for i in range(after_idx, fn.body[1]):
            if (toks[i].kind == "id" and toks[i].text in unlock_names
                    and i >= 2 and toks[i - 1].text in (".", "->")
                    and toks[i - 2].kind == "id"
                    and toks[i - 2].text == want):
                return i
        return fn.body[1]


# ---------------------------------------------------------------------------
# Project-wide index
# ---------------------------------------------------------------------------


class ProjectIndex:
    """All FileModels plus cross-file lookup tables."""

    def __init__(self, files):
        self.models: dict[str, FileModel] = {}
        for f in files:
            self.models[f] = FileModel(f)
        self.by_name: dict[str, list[Function]] = {}
        self.by_key: dict[tuple, list[Function]] = {}
        self.mutex_sites: dict[str, MutexMember] = {}
        self.member_types: dict[tuple, str] = {}
        for fm in self.models.values():
            for fn in fm.functions:
                if fn.is_lambda:
                    continue
                self.by_name.setdefault(fn.name, []).append(fn)
                self.by_key.setdefault(fn.key, []).append(fn)
            for mm in fm.mutex_members:
                self.mutex_sites.setdefault(mm.site, mm)
            self.member_types.update(fm.member_types)

    def model(self, fn: Function) -> FileModel:
        return self.models[fn.file]

    # -- annotation / signature queries (merged across decls + defs) --------

    def annotations_for(self, cls, name):
        ann = {}
        for fn in self.by_key.get((cls, name), []):
            ann.update(fn.annotations)
        return ann

    def functions_matching(self, name, cls=None):
        if cls is not None:
            hits = self.by_key.get((cls, name), [])
            if hits:
                return hits
        return self.by_name.get(name, [])

    # -- receiver-type inference --------------------------------------------

    TYPE_WORD = re.compile(r"[A-Za-z_]\w*")

    def class_of_type(self, type_str: str):
        """Best-effort class name from a declared type string."""
        if not type_str:
            return None
        words = [w for w in self.TYPE_WORD.findall(type_str)
                 if w not in ("const", "mutable", "std", "unique_ptr",
                              "shared_ptr", "vector", "atomic", "bg3",
                              "cloud", "wal", "core", "forest", "gc",
                              "replication", "bwtree", "graph", "query",
                              "workload", "lsm")]
        # Last capitalized word tends to be the class (unique_ptr<X>, X*...).
        for w in reversed(words):
            if w[0].isupper():
                return w
        return None

    def local_types(self, fn: Function):
        """Declared local variable name -> class, from `Type* name` patterns."""
        fm = self.model(fn)
        out = {}
        for stmt in fm.statements(fn):
            texts = [t.text for _, t in stmt]
            # pattern: [const] Type [*&] name ... ("=", "(", "{" or end)
            i = 0
            while i < len(texts) and texts[i] in ("const", "auto", "static"):
                i += 1
            run = []
            j = i
            while j < len(texts) and (re.match(r"^\w+$", texts[j]) or
                                      texts[j] in ("::", "<", ">", ",", "*",
                                                   "&")):
                run.append(texts[j])
                j += 1
            idents = [w for w in run if re.match(r"^\w+$", w)]
            if len(idents) >= 2 and (j >= len(texts) or
                                     texts[j] in ("=", "(", "{", ";")):
                name = idents[-1]
                cls = self.class_of_type(" ".join(run[:-1]))
                if cls and name[0].islower():
                    out.setdefault(name, cls)
        # parameters: "Type* name, ..."
        for piece in fn.params.split(","):
            words = piece.replace("*", " ").replace("&", " ").split()
            if len(words) >= 2:
                cls = self.class_of_type(" ".join(words[:-1]))
                if cls and re.match(r"^\w+$", words[-1]):
                    out.setdefault(words[-1], cls)
        return out

    def resolve_receiver(self, call: CallSite, fn: Function):
        """Class of the call's receiver, or None when unknown."""
        if not call.recv:
            return fn.cls  # unqualified: maybe a method of the same class
        head = call.recv[-1]
        if head == "this":
            return fn.cls
        if head[0].isupper():
            return head  # static call Class::Fn
        # member variable of the enclosing class?
        if fn.cls is not None and (fn.cls, head) in self.member_types:
            return self.class_of_type(self.member_types[(fn.cls, head)])
        return self.local_types(fn).get(head)

    def resolve_callees(self, call: CallSite, fn: Function):
        """Candidate Functions for a call site; [] when unresolvable."""
        recv_cls = self.resolve_receiver(call, fn)
        if recv_cls is not None:
            hits = self.by_key.get((recv_cls, call.name), [])
            if hits:
                return hits
            if call.recv:
                # Receiver class is known but the method is not indexed
                # (e.g. a class outside the lint scope): do NOT fall back to
                # name matching — guessing across classes breeds false
                # positives.
                return []
        if not call.recv:
            hits = self.by_key.get((None, call.name), [])
            all_named = self.by_name.get(call.name, [])
            if hits and len({f.key for f in all_named}) == 1:
                return hits
            if len({f.key for f in all_named}) == 1:
                return all_named
            return hits
        # obj->Name with unknown receiver type: resolve only when every
        # function of this name agrees (single key) — avoids cross-class
        # false positives.
        all_named = self.by_name.get(call.name, [])
        if len({f.key for f in all_named}) == 1:
            return all_named
        return []

    def lock_regions(self, fn: Function):
        """Held regions for fn, honoring annotations declared on any of its
        declarations (BG3_REQUIRES usually lives on the header decl, not the
        out-of-line definition)."""
        fm = self.model(fn)
        merged = dict(self.annotations_for(*fn.key))
        merged.update(fn.annotations)
        saved = fn.annotations
        fn.annotations = merged
        try:
            return fm.lock_regions(
                fn, lambda chain, f=fn: self.resolve_lock_site(chain, f))
        finally:
            fn.annotations = saved

    def resolve_lock_site(self, chain, fn: Function):
        """Maps a lock-expression chain to a mutex site "Class::member"."""
        if not chain:
            return "?"
        member = chain[-1]
        # mu_ alone: member of the enclosing class (or a local std guard).
        if len(chain) == 1:
            if fn.cls is not None and f"{fn.cls}::{member}" in self.mutex_sites:
                return f"{fn.cls}::{member}"
        else:
            recv = chain[-2]
            cls = None
            if fn.cls is not None and (fn.cls, recv) in self.member_types:
                cls = self.class_of_type(self.member_types[(fn.cls, recv)])
            if cls is None:
                cls = self.local_types(fn).get(recv)
            if cls is not None and f"{cls}::{member}" in self.mutex_sites:
                return f"{cls}::{member}"
        # unique member-name match across all classes
        cands = [s for s in self.mutex_sites if s.endswith("::" + member)]
        if len(cands) == 1:
            return cands[0]
        return "?" + ".".join(chain)
