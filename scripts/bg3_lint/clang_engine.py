"""Optional libclang cross-check engine for bg3-lint.

The default frontend (model.py) is textual and dependency-free. When the
libclang Python bindings are available (`pip install libclang` in CI; not
part of the container toolchain), `--engine=libclang` parses each TU with
the real AST and cross-checks the annotation surface the text frontend
recovered: every function the AST sees carrying an `annotate("bg3_blocking")`
/ `annotate("bg3_no_blocking")` attribute must be known to the text index
with the same marker, and vice versa for declarations in the same files.

This engine deliberately does not replace the passes — it validates their
input. Environments without the bindings fall back to the text engine with
a note (never an error), so the lint job's result does not depend on an
optional dependency.
"""

from __future__ import annotations


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def cross_check(index, compile_args_by_file):
    """Returns a list of mismatch strings, or None if libclang is missing."""
    try:
        import clang.cindex as ci
    except ImportError:
        return None
    notes = []
    try:
        clang_index = ci.Index.create()
    except Exception as e:  # libclang.so itself missing
        return [f"libclang unavailable ({e}); text engine results stand"]
    ann_kinds = {"bg3_blocking": "BG3_BLOCKING",
                 "bg3_no_blocking": "BG3_NO_BLOCKING"}
    for path, args in sorted(compile_args_by_file.items()):
        try:
            tu = clang_index.parse(path, args=args)
        except Exception as e:
            notes.append(f"{path}: libclang parse failed: {e}")
            continue
        for cur in tu.cursor.walk_preorder():
            if cur.kind not in (ci.CursorKind.FUNCTION_DECL,
                                ci.CursorKind.CXX_METHOD):
                continue
            if cur.location.file is None or \
                    cur.location.file.name != path:
                continue
            ast_marks = set()
            for ch in cur.get_children():
                if ch.kind == ci.CursorKind.ANNOTATE_ATTR and \
                        ch.spelling in ann_kinds:
                    ast_marks.add(ann_kinds[ch.spelling])
            if not ast_marks:
                continue
            cls = cur.semantic_parent.spelling \
                if cur.kind == ci.CursorKind.CXX_METHOD else None
            text_ann = index.annotations_for(cls, cur.spelling)
            for mark in ast_marks:
                if mark not in text_ann:
                    notes.append(
                        f"{path}:{cur.location.line}: AST sees {mark} on "
                        f"{cur.spelling} but the text index does not — "
                        f"frontend gap, please report")
    return notes
