"""bg3-lint: project-specific static analysis for the BG3 codebase.

Four passes over the C++ sources (DESIGN.md §5.6):

  status-discard        a call returning Status/Result<T> whose value is
                        silently dropped (or laundered through a (void) cast
                        instead of the sanctioned BG3_IGNORE_STATUS sink).
  latch-discipline      a path that reaches a BG3_BLOCKING function while a
                        bg3::Mutex / bg3::SharedMutex capability is held,
                        or a BG3_NO_BLOCKING function that can block.
  deadline-propagation  a function that accepts an OpContext* and calls an
                        OpContext-accepting callee without forwarding it.
  lock-rank             extracts the static lock-acquisition-order graph,
                        fails on cycles, and emits the ranking consumed by
                        the debug-build runtime checker (common/lock_rank.h).

Run via scripts/bg3_lint/run.py; see README "Linting".

The default frontend is a self-contained tokenizer/indexer (model.py) tuned
to this codebase's idiom — no third-party dependencies, driven by the file
list in the CMake-exported compile_commands.json. When the libclang Python
bindings are installed, `run.py --engine=libclang` cross-checks annotations
and function extents against the real AST (clang_engine.py); environments
without them (including the default container toolchain) fall back to the
text engine automatically.
"""

__all__ = ["model", "passes", "run"]
