// bg3-lint fixture: lock-rank pass, cycle case.
//
// Left::Cross acquires Left::mu_ then a callee acquires Right::mu_;
// Right::Cross does the mirror image. The acquisition-order graph is the
// two-cycle {Left::mu_ <-> Right::mu_} — a statically provable deadlock
// candidate the pass must report (and refuse to rank). Peers are passed as
// parameters, not stored as members, so the transitive-acquisition closure
// introduces no self-edges (self-edges divert a site to "unranked" instead
// of cycle detection).

class Right;

class Left {
 public:
  void LockOnly();
  void Cross(Right* peer);

 private:
  Mutex mu_;
};

class Right {
 public:
  void LockOnly();
  void Cross(Left* peer);

 private:
  Mutex mu_;
};

void Left::LockOnly() { MutexLock lock(&mu_); }
void Right::LockOnly() { MutexLock lock(&mu_); }

void Left::Cross(Right* peer) {
  MutexLock lock(&mu_);
  peer->LockOnly();
}

void Right::Cross(Left* peer) {
  MutexLock lock(&mu_);
  peer->LockOnly();
}
