// bg3-lint fixture: lock-rank pass, acyclic case.
//
// Two edge sources: a nested guard inside one function
// (Outer::mu_ -> Outer::aux_mu_) and a call made while a guard is held
// whose callee acquires its own lock (Outer::aux_mu_ -> Inner::mu_).
// Expected ranking: Outer::mu_ < Outer::aux_mu_ < Inner::mu_, no findings.

class Inner {
 public:
  void Touch() { MutexLock lock(&mu_); }

 private:
  Mutex mu_;
};

class Outer {
 public:
  void Nest();
  void Call();

 private:
  Mutex mu_;
  Mutex aux_mu_;
  Inner* inner_;
};

void Outer::Nest() {
  MutexLock lock(&mu_);
  MutexLock lock2(&aux_mu_);
}

void Outer::Call() {
  MutexLock lock(&aux_mu_);
  inner_->Touch();
}
