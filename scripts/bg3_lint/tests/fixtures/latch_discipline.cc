// bg3-lint fixture: latch-discipline pass.
//
// Exercises: BG3_BLOCKING seeds, builtin blocking names, transitive
// propagation through the call graph, RAII-guard regions, BG3_REQUIRES
// regions merged from the in-class declaration, and BG3_NO_BLOCKING
// functions that in fact block.

class CloudStore {
 public:
  void PutBlob() BG3_BLOCKING;
  void Touch();  // not blocking
};

// Blocks transitively: no annotation of its own, but its body reaches a
// BG3_BLOCKING callee.
class Wal {
 public:
  void Append() { store_->PutBlob(); }

 private:
  CloudStore* store_;
};

class Cache {
 public:
  void Insert(int v);
  void InsertSlow(int v);
  void Probe() BG3_NO_BLOCKING;

 private:
  Mutex mu_;
  CloudStore* store_;
};

void Cache::Insert(int v) {
  MutexLock lock(&mu_);
  store_->Touch();  // non-blocking callee under the latch: fine
  v = v + 1;
}

void Cache::InsertSlow(int v) {
  MutexLock lock(&mu_);
  store_->PutBlob();  // LINT-EXPECT: latch-discipline under-lock:Cache::mu_->PutBlob
  v = v + 1;
}

void Cache::Probe() {
  store_->PutBlob();  // LINT-EXPECT: latch-discipline no-blocking:PutBlob
}

class Engine {
 public:
  void Commit();

 private:
  Mutex mu_;
  Wal* wal_;
};

void Engine::Commit() {
  MutexLock lock(&mu_);
  wal_->Append();  // LINT-EXPECT: latch-discipline under-lock:Engine::mu_->Append
}

class Backoff {
 public:
  void Nap();
  void NapOutside();

 private:
  Mutex mu_;
};

void Backoff::Nap() {
  MutexLock lock(&mu_);
  std::this_thread::sleep_for(10);  // LINT-EXPECT: latch-discipline under-lock:Backoff::mu_->sleep_for
}

void Backoff::NapOutside() {
  { MutexLock lock(&mu_); }
  std::this_thread::sleep_for(10);  // latch already released: fine
}

// BG3_REQUIRES on the in-class declaration makes the whole out-of-line
// body a held region (decl/def annotation merge).
class Registry {
 public:
  void Publish() BG3_REQUIRES(mu_);

 private:
  Mutex mu_;
  CloudStore* store_;
};

void Registry::Publish() {
  store_->PutBlob();  // LINT-EXPECT: latch-discipline under-lock:Registry::mu_->PutBlob
}

// WAL pipeline classes (DESIGN.md §5.9): plain std::mutex guard regions
// are checked too — blocking cloud I/O under the writer or ledger mutex
// stalls every appender behind one round trip. Condition-variable waits
// naming the guard variable are exempt (the wait releases the lock).
class WalWriter {
 public:
  void FlushInline();
  void WaitDrained();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  CloudStore* store_;
};

void WalWriter::FlushInline() {
  std::lock_guard<std::mutex> lock(mu_);
  store_->PutBlob();  // LINT-EXPECT: latch-discipline under-lock:WalWriter::mu_->PutBlob
}

void WalWriter::WaitDrained() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock);  // releases mu_ while waiting: fine
}

// Outside the pipeline classes, std::mutex guards stay out of scope.
class SideCar {
 public:
  void FlushInline();

 private:
  std::mutex mu_;
  CloudStore* store_;
};

void SideCar::FlushInline() {
  std::lock_guard<std::mutex> lock(mu_);
  store_->PutBlob();  // std::mutex outside the WAL pipeline: not checked
}
