// bg3-lint fixture: status-discard pass.
//
// LINT-EXPECT markers (pass name + detail prefix) declare the findings the
// pass must produce on that exact line. Comments are stripped by the
// tokenizer, so the markers are invisible to the pass under test.

class Status {
 public:
  bool ok() const;
};

Status Flaky() { return Status(); }
Status Other() { return Status(); }
void Sink(Status s);

class Store {
 public:
  Status Write();
  int Size();
};

void DiscardsPlain() {
  Flaky();  // LINT-EXPECT: status-discard discard:Flaky
}

void DiscardsMethod(Store* store) {
  store->Write();  // LINT-EXPECT: status-discard discard:Write
}

void DiscardsViaVoidCast() {
  (void)Flaky();               // LINT-EXPECT: status-discard void-cast:Flaky
  static_cast<void>(Other());  // LINT-EXPECT: status-discard void-cast:Other
}

Status HandledUses(Store* store) {
  Status s = Flaky();        // bound to a variable: consumed
  if (!Flaky().ok()) {       // control statement: the value is inspected
    Sink(Flaky());           // nested call, not the outermost expression
  }
  BG3_IGNORE_STATUS(Other());  // the sanctioned, auditable sink
  store->Size();             // void/int callee: nothing to discard
  return Flaky();            // propagated
}
