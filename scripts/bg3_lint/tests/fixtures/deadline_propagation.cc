// bg3-lint fixture: deadline-propagation pass.
//
// A function that accepts an OpContext* must hand it to every callee that
// can take one; an explicit nullptr argument is a visible, reviewable
// opt-out and is not flagged. Callees return void here so the
// status-discard pass stays quiet on this fixture.

struct OpContext {
  long deadline_us;
};

void Inner(int v, const OpContext* ctx) { v = v + (ctx != nullptr); }
void Leafy(int v) { v = v + 1; }

class Api {
 public:
  void Drops(int v, const OpContext* ctx);
  void Forwards(int v, const OpContext* ctx);
  void OptsOut(int v, const OpContext* ctx);
  void NoCtxParam(int v);
};

void Api::Drops(int v, const OpContext* ctx) {
  Inner(v);  // LINT-EXPECT: deadline-propagation dropped-ctx:Inner
  Leafy(v);  // callee takes no OpContext: nothing to forward
}

void Api::Forwards(int v, const OpContext* ctx) {
  Inner(v, ctx);
}

void Api::OptsOut(int v, const OpContext* ctx) {
  Inner(v, nullptr);  // deliberate, visible opt-out
}

void Api::NoCtxParam(int v) {
  Inner(v);  // caller has no context to forward: out of scope
}
