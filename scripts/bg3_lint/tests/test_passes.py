#!/usr/bin/env python3
"""Fixture tests for the bg3-lint passes.

Each fixture under fixtures/ is a small C++ file whose expected findings
are declared inline with `// LINT-EXPECT: <pass> <detail-prefix>` comments
on the offending line (comments are stripped by the tokenizer, so the
markers cannot influence the pass under test). The runner builds a
ProjectIndex per fixture, runs every pass, and asserts the finding set
matches the expectations exactly — a missing finding and an unexpected
finding are both failures.

Runs standalone (no pytest in the base container):

    python3 scripts/bg3_lint/tests/test_passes.py

and is pytest-compatible (every `test_*` function is a plain zero-argument
assertion function) for environments that have it.
"""

from __future__ import annotations

import json
import os
import re
import sys
import traceback

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(os.path.dirname(_HERE)))  # scripts/

from bg3_lint.model import ProjectIndex  # noqa: E402
from bg3_lint.passes import all_passes  # noqa: E402

FIXTURES = os.path.join(_HERE, "fixtures")
BASELINE = os.path.join(os.path.dirname(_HERE), "baseline.json")

EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*(\S+)\s+(\S+)")


def _expectations(path):
    """[(line, pass_name, detail_prefix)] parsed from LINT-EXPECT comments."""
    out = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = EXPECT_RE.search(line)
            if m:
                out.append((lineno, m.group(1), m.group(2)))
    return out


def _run_fixture(name):
    """Runs every pass over one fixture in isolation.

    Returns (findings, config) — config carries the lock-rank pass's
    ranking/unranked/edges side channel.
    """
    path = os.path.join(FIXTURES, name)
    index = ProjectIndex([path])
    config = {}
    findings = []
    for mod in all_passes().values():
        findings.extend(mod.run(index, config))
    return findings, config


def _check_expectations(name):
    path = os.path.join(FIXTURES, name)
    expected = _expectations(path)
    assert expected, f"{name}: fixture declares no LINT-EXPECT markers"
    findings, _ = _run_fixture(name)

    actual = [(f.line, f.pass_name, f.detail) for f in findings]
    problems = []

    matched = set()
    for line, pname, prefix in expected:
        hit = next((i for i, (al, ap, ad) in enumerate(actual)
                    if i not in matched and al == line and ap == pname
                    and ad.startswith(prefix)), None)
        if hit is None:
            problems.append(
                f"missing: line {line} expected [{pname}] {prefix}…")
        else:
            matched.add(hit)
    for i, (al, ap, ad) in enumerate(actual):
        if i not in matched:
            problems.append(f"unexpected: line {al} [{ap}] {ad}")

    assert not problems, f"{name}:\n  " + "\n  ".join(problems)


def test_status_discard_fixture():
    _check_expectations("status_discard.cc")


def test_latch_discipline_fixture():
    _check_expectations("latch_discipline.cc")


def test_deadline_propagation_fixture():
    _check_expectations("deadline_propagation.cc")


def test_lock_rank_acyclic_ranking():
    findings, config = _run_fixture("lock_rank_acyclic.cc")
    assert not findings, [f.render() for f in findings]
    ranking = config["lock_rank"]["ranking"]
    for site in ("Outer::mu_", "Outer::aux_mu_", "Inner::mu_"):
        assert site in ranking, f"{site} missing from ranking {ranking}"
    assert ranking["Outer::mu_"] < ranking["Outer::aux_mu_"], ranking
    assert ranking["Outer::aux_mu_"] < ranking["Inner::mu_"], ranking
    assert sorted(ranking.values()) == list(range(1, len(ranking) + 1)), \
        f"ranks must be dense 1..N: {ranking}"
    assert not config["lock_rank"]["unranked"], config["lock_rank"]


def test_lock_rank_cycle_detected():
    findings, config = _run_fixture("lock_rank_cycle.cc")
    cycles = [f for f in findings if f.pass_name == "lock-rank"
              and f.detail.startswith("cycle:")]
    assert cycles, ("mutual Left::mu_ <-> Right::mu_ acquisition must be "
                    f"reported as a cycle; findings: "
                    f"{[f.render() for f in findings]}")
    detail = cycles[0].detail
    assert "Left::mu_" in detail and "Right::mu_" in detail, detail
    # Neither site may receive a rank — a cycle is unrankable by definition.
    ranking = config["lock_rank"]["ranking"]
    assert "Left::mu_" not in ranking and "Right::mu_" not in ranking, ranking


def test_baseline_is_well_formed():
    with open(BASELINE, encoding="utf-8") as f:
        data = json.load(f)
    assert data.get("version") == 1, data.get("version")
    sup = data.get("suppressions", {})
    assert isinstance(sup, dict) and sup, "baseline has no suppressions"
    known = set(all_passes())
    for key, reason in sup.items():
        pass_name = key.split(":", 1)[0]
        assert pass_name in known, f"unknown pass in baseline key: {key}"
        assert key.count(":") >= 3, f"malformed baseline key: {key}"
        assert isinstance(reason, str) and len(reason) >= 20, \
            f"baseline entry {key} needs a real justification, got: {reason!r}"


def main():
    tests = [(n, fn) for n, fn in sorted(globals().items())
             if n.startswith("test_") and callable(fn)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
        except Exception:
            failures += 1
            print(f"FAIL {name}")
            traceback.print_exc()
        else:
            print(f"PASS {name}")
    print(f"{len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
