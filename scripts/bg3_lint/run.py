#!/usr/bin/env python3
"""bg3-lint driver.

Typical use (from the repo root):

    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    python3 scripts/bg3_lint/run.py                  # all passes, baseline-aware
    python3 scripts/bg3_lint/run.py --update-baseline
    python3 scripts/bg3_lint/run.py --emit-lock-ranks src/common/lock_rank_gen.h
    python3 scripts/bg3_lint/run.py --check-lock-ranks   # CI: header up to date?

Exit status: 0 when every finding is baselined and (with --check-lock-ranks)
the generated header matches; 1 otherwise; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(_HERE))

from bg3_lint import clang_engine  # noqa: E402
from bg3_lint.model import ProjectIndex  # noqa: E402
from bg3_lint.passes import all_passes  # noqa: E402
from bg3_lint.passes import lock_rank as lock_rank_pass  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(_HERE))
DEFAULT_BASELINE = os.path.join(_HERE, "baseline.json")

SOURCE_EXTS = (".cc", ".cpp", ".cxx", ".h", ".hpp")


def discover_files(compdb_path):
    """Translation units from compile_commands.json plus all headers under
    src/ (headers carry the class/annotation surface the passes need)."""
    files = []
    seen = set()

    def add(path):
        rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
        if rel.startswith(".."):
            return
        if not rel.endswith(SOURCE_EXTS):
            return
        if rel in seen or not os.path.isfile(os.path.join(REPO_ROOT, rel)):
            return
        seen.add(rel)
        files.append(rel)

    compdb_used = False
    if compdb_path and os.path.isfile(compdb_path):
        with open(compdb_path) as f:
            for entry in json.load(f):
                add(os.path.join(entry.get("directory", ""),
                                 entry.get("file", "")))
        compdb_used = True
    else:
        for pat in ("src/**/*.cc", "tests/*.cc", "examples/*.cpp",
                    "bench/*.cc", "tools/*.cc"):
            for p in glob.glob(os.path.join(REPO_ROOT, pat), recursive=True):
                add(p)
    for pat in ("src/**/*.h", "bench/*.h", "tests/*.h", "tools/*.h"):
        for p in glob.glob(os.path.join(REPO_ROOT, pat), recursive=True):
            add(p)
    return sorted(files), compdb_used


def load_baseline(path):
    if not os.path.isfile(path):
        return {"version": 1, "suppressions": {}}
    with open(path) as f:
        data = json.load(f)
    data.setdefault("suppressions", {})
    return data


def main(argv=None):
    ap = argparse.ArgumentParser(prog="bg3-lint", description=__doc__)
    ap.add_argument("--compdb",
                    default=os.path.join(REPO_ROOT, "build",
                                         "compile_commands.json"),
                    help="compile_commands.json (default: build/)")
    ap.add_argument("--files", nargs="*",
                    help="lint exactly these files (overrides discovery)")
    ap.add_argument("--pass", dest="passes", action="append",
                    choices=sorted(all_passes().keys()),
                    help="run only the named pass (repeatable)")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="suppression baseline JSON")
    ap.add_argument("--no-baseline", action="store_true",
                    help="report every finding, ignoring the baseline")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to exactly the current "
                         "findings (prunes stale entries)")
    ap.add_argument("--emit-lock-ranks", metavar="PATH",
                    help="write the generated lock-rank header to PATH")
    ap.add_argument("--check-lock-ranks", action="store_true",
                    help="fail if src/common/lock_rank_gen.h is stale")
    ap.add_argument("--engine", choices=("text", "libclang"), default="text",
                    help="libclang adds an AST cross-check when the bindings "
                         "are installed; falls back to text otherwise")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.files:
        files = [os.path.relpath(os.path.abspath(f), REPO_ROOT)
                 for f in args.files]
        compdb_used = False
    else:
        files, compdb_used = discover_files(args.compdb)
    if not files:
        print("bg3-lint: no input files found", file=sys.stderr)
        return 2
    if not args.quiet:
        src = ("compile_commands.json" if compdb_used
               else "glob fallback (no compile_commands.json — run cmake "
                    "with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
        print(f"bg3-lint: indexing {len(files)} files [{src}]")

    os.chdir(REPO_ROOT)
    index = ProjectIndex(files)

    if args.engine == "libclang":
        if clang_engine.available():
            notes = clang_engine.cross_check(index, {})
            for n in notes or []:
                print(f"bg3-lint[libclang]: {n}")
        elif not args.quiet:
            print("bg3-lint: libclang bindings not installed; "
                  "using text engine")

    config = {}
    selected = args.passes or sorted(all_passes().keys())
    findings = []
    for name in selected:
        mod = all_passes()[name]
        got = mod.run(index, config)
        if not args.quiet:
            print(f"bg3-lint: pass {name}: {len(got)} finding(s)")
        findings.extend(got)

    rc = 0

    # Lock-rank header emission / staleness check.
    need_ranks = args.emit_lock_ranks or args.check_lock_ranks
    if need_ranks and "lock_rank" not in config:
        findings.extend(lock_rank_pass.run(index, config))
    if need_ranks:
        lr = config["lock_rank"]
        header = lock_rank_pass.emit_header(
            lr["ranking"], lr["unranked"], lr["edges"])
        if args.emit_lock_ranks:
            with open(args.emit_lock_ranks, "w") as f:
                f.write(header)
            if not args.quiet:
                print(f"bg3-lint: wrote {args.emit_lock_ranks} "
                      f"({len(lr['ranking'])} ranked, "
                      f"{len(lr['unranked'])} unranked sites)")
        if args.check_lock_ranks:
            checked_in = os.path.join(REPO_ROOT, "src/common/lock_rank_gen.h")
            current = ""
            if os.path.isfile(checked_in):
                with open(checked_in) as f:
                    current = f.read()
            if current != header:
                print("bg3-lint: src/common/lock_rank_gen.h is stale; "
                      "regenerate with --emit-lock-ranks", file=sys.stderr)
                rc = 1

    # Baseline filtering.
    baseline = load_baseline(args.baseline)
    supp = baseline["suppressions"]
    if args.update_baseline:
        new_supp = {}
        for f in findings:
            new_supp[f.key] = supp.get(f.key, "TODO: justify this suppression")
        baseline["suppressions"] = dict(sorted(new_supp.items()))
        with open(args.baseline, "w") as fp:
            json.dump(baseline, fp, indent=2)
            fp.write("\n")
        print(f"bg3-lint: baseline updated: {len(new_supp)} suppression(s) "
              f"-> {args.baseline}")
        return 0

    active = supp if not args.no_baseline else {}
    used = set()
    fresh = []
    for f in findings:
        if f.key in active:
            used.add(f.key)  # one baseline entry covers every duplicate site
            continue
        fresh.append(f)
    for f in fresh:
        print(f.render())
    stale = sorted(set(active) - used)
    if stale and not args.quiet:
        for key in stale:
            print(f"bg3-lint: stale baseline entry (no longer fires): {key}")
    if fresh:
        print(f"bg3-lint: {len(fresh)} new finding(s) "
              f"({len(findings) - len(fresh)} baselined)", file=sys.stderr)
        rc = 1
    elif not args.quiet:
        print(f"bg3-lint: clean ({len(findings)} baselined finding(s))")
    return rc


if __name__ == "__main__":
    sys.exit(main())
